//! The RPC boundary of the §4 computation tree.
//!
//! **Transport.** Frames travel over a socket-shape-agnostic [`Stream`]:
//! `unix:<path>` sockets for the single-box process split, `tcp:<host:port>`
//! for multi-host trees (loopback TCP today, real hosts tomorrow — TCP
//! connections set `TCP_NODELAY`, because a query frame *is* the flush
//! boundary). [`Addr`] names an endpoint in either shape and crosses the
//! wire inside tree-wiring messages, so a merge server can parent children
//! on a different transport than its own.
//!
//! **Framing.** Every frame is `[FrameHeader][payload]` — the 6-byte
//! versioned header of [`pd_common::wire::FrameHeader`] (version, flags,
//! payload length, capped at [`MAX_FRAME_BYTES`]) followed by the
//! dependency-free [`pd_common::wire`] encoding, so a partial result
//! arriving at a merge server is bit-identical to the one the leaf
//! computed.
//!
//! **Compression.** Serialized partials are dominated by `FloatSum`
//! superaccumulator limbs, which are mostly zero — the Zippy-family codec
//! from `pd-compress` shrinks them several-fold. Compression is negotiated
//! per connection with header flags: a sender in compressed mode marks its
//! frames [`wire::FRAME_FLAG_COMPRESS_OK`] ("you may compress replies to
//! me") and compresses its own payloads (flag
//! [`wire::FRAME_FLAG_COMPRESSED`]) whenever that actually saves bytes;
//! the receiver decompresses flag-driven, so either side may stay raw.
//!
//! **Restriction-aware queries.** A query crosses the boundary as the
//! *decoded* [`pd_sql::AnalyzedQuery`] — restriction tree, group-by keys,
//! aggregates — not as SQL text. Leaves execute it directly (one parse at
//! the root, none per hop), and every parent evaluates the restriction
//! against its children's [`ShardMeta`] to **pre-skip subtrees whose
//! shards cannot match**: no frame is sent, the shard's rows are accounted
//! as skipped, and the prune is reported up in
//! [`ScanStats::subtrees_pruned`].
//!
//! **Deadline budgets.** Every query request carries one *remaining time
//! budget* for the whole query, not a per-hop deadline: each worker
//! subtracts the time the request spent in its queue before fanning out,
//! and answers a typed [`RpcError::Deadline`] fault the moment the budget
//! is spent instead of letting children run a query nobody is waiting
//! for. The *caller* enforces the same budget with absolute socket read
//! deadlines, so a stalled or trickling peer expires on time either way.
//!
//! **Hedged replica racing.** A leaf pair is queried by racing: the
//! primary is asked first, and if it has not answered within the hedge
//! delay (derived by the driver from observed queue delays), the replica
//! is launched *in parallel* — first answer wins, the loser's socket is
//! shut down via [`CancelToken`]. A straggling primary therefore costs
//! one hedge delay, not its whole budget, and every hedge doubles as
//! replica cache warming. Failures are typed ([`RpcError`]): transport
//! faults (`Deadline`, `PeerGone`, `Decode`, `ConnRefused`) let the other
//! copy win, while application errors from a live worker propagate —
//! deterministic, so a replica would only repeat them. Refused connects
//! are retried with bounded exponential backoff and seeded jitter.
//!
//! **Corruption.** Both sides decode frames with [`pd_common::wire`]'s
//! checked readers; compressed payloads additionally pass the codec's own
//! validation. Truncated or corrupt frames produce a typed
//! `RpcError::Decode`, which the racing path treats exactly like a
//! timeout — fresh bytes are encoded for the other replica.

use crate::chaos::ChaosDirective;
use crate::meta::{self, ShardMeta};
use pd_common::rng::Rng;
use pd_common::wire::{self, Decode, Encode, FrameHeader, Reader};
use pd_common::{fx_hash64, Error, Result, Row, RpcError, Schema};
use pd_compress::{Codec, CodecKind};
use pd_core::{BuildOptions, PartialResult, ScanStats};
use pd_encoding::TableDelta;
use pd_sql::AnalyzedQuery;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Upper bound on a single frame's payload (decompressed or raw). A
/// shard's partial result for an interactive group-by is kilobytes; a
/// shard *load* (rows + recipe) is megabytes. A length beyond this is
/// corruption, not data.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Payloads below this never compress (the header byte and codec framing
/// would eat the gain).
const MIN_COMPRESS_BYTES: usize = 64;

/// How long a parent waits for a freshly spawned worker to bind its
/// socket and answer the first `Ping`.
pub const STARTUP_TIMEOUT: Duration = Duration::from_secs(30);

/// Timeout for shard loading (table shipping + import on the worker).
pub const LOAD_TIMEOUT: Duration = Duration::from_secs(120);

/// The wire codec used for compressed frames (the paper's "Zippy").
fn frame_codec() -> &'static dyn Codec {
    CodecKind::Zippy.codec()
}

// --- addresses --------------------------------------------------------------

/// A tree-node endpoint in either socket shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A filesystem socket: `unix:/tmp/pd-tree-1/l0p.sock`.
    Unix(PathBuf),
    /// A TCP endpoint: `tcp:127.0.0.1:41233`.
    Tcp(String),
}

impl Addr {
    /// Parse the textual form (`unix:<path>` / `tcp:<host:port>`); a bare
    /// path is shorthand for a Unix socket.
    pub fn parse(s: &str) -> Result<Addr> {
        if let Some(path) = s.strip_prefix("unix:") {
            Ok(Addr::Unix(PathBuf::from(path)))
        } else if let Some(hostport) = s.strip_prefix("tcp:") {
            if !hostport.contains(':') {
                return Err(Error::Data(format!("rpc: tcp address `{hostport}` needs host:port")));
            }
            Ok(Addr::Tcp(hostport.to_owned()))
        } else if s.contains('/') {
            Ok(Addr::Unix(PathBuf::from(s)))
        } else {
            Err(Error::Data(format!(
                "rpc: cannot parse address `{s}` (unix:<path> | tcp:<host:port>)"
            )))
        }
    }

    /// Connect a [`Stream`] to this endpoint.
    pub fn connect(&self) -> std::io::Result<Stream> {
        match self {
            Addr::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            Addr::Tcp(hostport) => {
                let stream = TcpStream::connect(hostport.as_str())?;
                // A frame is the flush boundary; Nagle would add RTTs.
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Unix(path) => write!(f, "unix:{}", path.display()),
            Addr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
        }
    }
}

impl Encode for Addr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Addr::Unix(path) => {
                out.push(0);
                // Addrs only originate from `Addr::parse` (UTF-8 by
                // construction) and `ProcessTree`'s temp-dir + ASCII-name
                // paths, so the lossy conversion is the identity; a
                // hand-built non-UTF-8 path would mangle here rather than
                // error, which the parse-only construction rule prevents.
                path.to_string_lossy().as_ref().encode(out);
            }
            Addr::Tcp(hostport) => {
                out.push(1);
                hostport.encode(out);
            }
        }
    }
}

impl Decode for Addr {
    fn decode(r: &mut Reader<'_>) -> Result<Addr> {
        Ok(match r.u8()? {
            0 => Addr::Unix(PathBuf::from(String::decode(r)?)),
            1 => Addr::Tcp(String::decode(r)?),
            other => return Err(Error::Data(format!("wire: invalid addr tag {other}"))),
        })
    }
}

/// One connected peer, in either socket shape. Both shapes expose the same
/// byte-stream and per-syscall-timeout surface, which is all the framing
/// layer needs — the deadline logic above it is shape-agnostic.
pub enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(timeout),
            Stream::Tcp(s) => s.set_write_timeout(timeout),
        }
    }

    /// A second handle onto the same connection (shared file descriptor) —
    /// what a [`CancelToken`] holds so a hedge loser can be shut down from
    /// outside the thread blocked on it.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    /// Shut both directions down: any thread blocked reading this
    /// connection wakes immediately with an error.
    pub fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound accept socket in either shape.
pub enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Bind `addr`. A TCP port of `0` binds an ephemeral port — read the
    /// real one back with [`Listener::local_addr`] (workers announce it to
    /// their spawner).
    pub fn bind(addr: &Addr) -> Result<Listener> {
        match addr {
            Addr::Unix(path) => Ok(Listener::Unix(
                UnixListener::bind(path)
                    .map_err(|e| Error::Data(format!("bind {}: {e}", path.display())))?,
            )),
            Addr::Tcp(hostport) => Ok(Listener::Tcp(
                TcpListener::bind(hostport.as_str())
                    .map_err(|e| Error::Data(format!("bind tcp:{hostport}: {e}")))?,
            )),
        }
    }

    /// The resolved address (TCP: with the real port).
    pub fn local_addr(&self) -> Result<Addr> {
        match self {
            Listener::Unix(l) => {
                let addr = l.local_addr().map_err(|e| Error::Data(format!("local_addr: {e}")))?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| Error::Data("rpc: unnamed unix listener".into()))?;
                Ok(Addr::Unix(path.to_path_buf()))
            }
            Listener::Tcp(l) => {
                let addr = l.local_addr().map_err(|e| Error::Data(format!("local_addr: {e}")))?;
                Ok(Addr::Tcp(addr.to_string()))
            }
        }
    }

    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
        }
    }
}

// --- messages --------------------------------------------------------------

/// Driver/parent → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / startup handshake. Answered inline, never queued.
    Ping,
    /// Become a leaf: import the shipped rows into a [`pd_core::DataStore`].
    /// Acknowledged with [`Response::Loaded`] — the shard's metadata
    /// summary, which parents use to pre-skip.
    Load(Box<LoadRequest>),
    /// Become a merge server owning a subtree.
    Attach(AttachRequest),
    /// Apply a streaming delta in place (leaf only): extend the shard's
    /// dictionaries (existing ids stay stable), encode the delta rows as
    /// fresh chunks, refresh the shard metadata for those chunks, and
    /// adopt the new epoch — no respawn, no table reshipping. Acknowledged
    /// with [`Response::Loaded`] carrying the refreshed [`ShardMeta`].
    Append(Box<AppendRequest>),
    /// Execute / fan out one query.
    Query(Box<QueryRequest>),
    /// Test knob: delay every subsequent query answer by this much (how
    /// the deadline-expiry failover suite makes a worker miss deadlines).
    Delay { micros: u64 },
    /// Exit the worker process (acknowledged first).
    Shutdown,
}

/// Everything a worker needs to become shard `shard`'s server.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRequest {
    pub shard: u64,
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub build: BuildOptions,
    /// Worker thread count for chunk scans (0 = auto, as in-process).
    pub threads: u64,
    /// This shard's share of the uncompressed-cache byte budget.
    pub cache_budget: u64,
    /// Capacity (signatures) of the leaf's own result cache; 0 disables.
    pub cache_entries: u64,
    /// Rebuild epoch of the shipped data. Queries carrying a different
    /// epoch drop the worker's result cache before executing.
    pub epoch: u64,
    /// This node's tree-wide name (`l0p`, `l0r`, ...) — the key chaos
    /// directives target, and the label failures report.
    pub name: String,
}

/// A streaming append for one leaf shard: the self-contained delta batch
/// plus the rebuild epoch it establishes. The delta carries its own
/// per-column sorted dictionaries ([`pd_encoding::TableDelta`]), so the
/// sender needs no knowledge of the shard's resident dictionaries;
/// decoding re-validates every invariant, so a decoded request is safe to
/// apply.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendRequest {
    pub shard: u64,
    pub delta: TableDelta,
    /// The epoch this append establishes; the worker adopts it and drops
    /// result caches under the usual epoch rule.
    pub epoch: u64,
}

/// The subtree a merge server owns.
#[derive(Debug, Clone, PartialEq)]
pub struct AttachRequest {
    pub children: Vec<ChildSpec>,
    /// Whether this merge server compresses the frames *it* sends to its
    /// children (and advertises compressed replies) — the per-connection
    /// negotiation travels down the tree with the wiring.
    pub compress: bool,
    /// Capacity (signatures) of this merge server's own cache of folded
    /// subtree partials; 0 disables.
    pub cache_entries: u64,
    /// Rebuild epoch of the subtree's data (same contract as
    /// [`LoadRequest::epoch`]).
    pub epoch: u64,
    /// This merge server's tree-wide name (`m1_0`, ...), same contract as
    /// [`LoadRequest::name`].
    pub name: String,
}

/// One child of a tree node — a leaf shard (with its replica, the §4
/// "answer-first-wins" pair) or a deeper merge server. Either way the spec
/// carries the shard metadata beneath it, so the parent can prune the
/// entire edge when no shard below can match a restriction.
#[derive(Debug, Clone, PartialEq)]
pub enum ChildSpec {
    Leaf {
        shard: u64,
        primary: Addr,
        replica: Option<Addr>,
        meta: ShardMeta,
    },
    /// `height` = levels of tree below this node (≥ 1), used to scale the
    /// caller's timeout; `metas` = every shard in the subtree.
    Node {
        addr: Addr,
        height: u64,
        metas: Vec<ShardMeta>,
    },
}

impl ChildSpec {
    /// The shard summaries beneath this child.
    pub fn metas(&self) -> &[ShardMeta] {
        match self {
            ChildSpec::Leaf { meta, .. } => std::slice::from_ref(meta),
            ChildSpec::Node { metas, .. } => metas,
        }
    }
}

/// A query crossing a tree edge: the decoded, analyzed form — restriction,
/// keys, aggregates — so no hop re-parses SQL and every hop can reason
/// about the restriction.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    pub query: AnalyzedQuery,
    /// Remaining time budget for the *whole* query. Each worker subtracts
    /// its queueing delay before executing or fanning out, and answers a
    /// typed `Deadline` fault immediately once the budget is spent —
    /// never a hop that children must time out of serially.
    pub budget: Duration,
    /// The hedge delay in microseconds: how long a parent waits on a leaf
    /// primary before racing the replica in parallel. `0` disables
    /// hedging (sequential primary-then-replica failover).
    pub hedge_micros: u64,
    /// Shards whose primaries the [`crate::FailureModel`] killed for this
    /// query: their parents skip the primary and go straight to the
    /// replica, the same path a deadline expiry takes.
    pub killed: Vec<u64>,
    /// The driver's current rebuild epoch. A node holding a cache from an
    /// older epoch drops it before answering — the distributed form of
    /// the root cache's rebuild invalidation.
    pub epoch: u64,
    /// Chaos directives for this query, drawn once at the root from the
    /// seeded [`crate::ChaosModel`] and forwarded whole down the tree;
    /// each worker applies only the faults naming its own node.
    pub chaos: Vec<ChaosDirective>,
    /// Whether parents may use the chunk-granular metadata layers
    /// ([`crate::meta::chunk_verdicts`]) to prune edges and leaves may
    /// seed their scans with the same verdicts. Off, pruning falls back
    /// to the shard-granular zone map + blooms only — results are
    /// identical either way; only the work moves.
    pub chunk_pruning: bool,
}

/// Per-shard observation, reported up the tree: how long the subquery took
/// as measured by the shard's *parent* (wall clock, including transport
/// and queueing), the time the request spent queued in worker processes,
/// whether the shard's answer came from the replica (`failover`), whether
/// the replica was raced because the primary outlasted the hedge delay
/// (`hedged`), and whether the shard's contribution was served from a
/// worker's result cache (its own, or a merge server's above it) without
/// reaching the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    pub shard: u64,
    pub latency: Duration,
    pub queue: Duration,
    pub failover: bool,
    pub hedged: bool,
    pub cache_hit: bool,
}

/// A subtree's merged answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeAnswer {
    pub partial: PartialResult,
    pub stats: ScanStats,
    pub reports: Vec<ShardReport>,
}

impl SubtreeAnswer {
    fn empty() -> SubtreeAnswer {
        SubtreeAnswer {
            partial: PartialResult::default(),
            stats: ScanStats::default(),
            reports: Vec::new(),
        }
    }
}

/// Worker → parent messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ack for `Ping` / `Attach` / `Delay` / `Shutdown`.
    Ok,
    /// Ack for `Load`: the built shard's metadata summary (row/chunk
    /// totals, per-column value sets and extremes).
    Loaded(Box<ShardMeta>),
    Answer(Box<SubtreeAnswer>),
    /// Application-level failure: the worker is alive and decoded the
    /// request, but executing it failed (plan error, missing role, ...).
    /// Deterministic — a replica would only repeat it, so no failover.
    Err(String),
    /// Transport-level NAK: the worker could not *decode* the request
    /// frame (truncation/corruption on the wire). For a leaf primary this
    /// is treated like a timeout — the caller re-encodes fresh bytes for
    /// the replica.
    Malformed(String),
    /// Typed RPC failure: the worker is alive but could not serve the
    /// query for a *transport/robustness* reason (budget spent in its
    /// queue, a child gone, ...). Unlike [`Response::Err`] these are
    /// failover candidates — the other replica may still answer in time.
    Fault(RpcError),
}

// --- message codecs --------------------------------------------------------

const REQ_PING: u8 = 0;
const REQ_LOAD: u8 = 1;
const REQ_ATTACH: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_DELAY: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;
const REQ_APPEND: u8 = 6;

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Load(load) => {
                out.push(REQ_LOAD);
                load.shard.encode(out);
                load.schema.encode(out);
                load.rows.encode(out);
                load.build.encode(out);
                load.threads.encode(out);
                load.cache_budget.encode(out);
                load.cache_entries.encode(out);
                load.epoch.encode(out);
                load.name.encode(out);
            }
            Request::Attach(attach) => {
                out.push(REQ_ATTACH);
                attach.children.encode(out);
                attach.compress.encode(out);
                attach.cache_entries.encode(out);
                attach.epoch.encode(out);
                attach.name.encode(out);
            }
            Request::Query(query) => {
                out.push(REQ_QUERY);
                query.query.encode(out);
                query.budget.encode(out);
                query.hedge_micros.encode(out);
                query.killed.encode(out);
                query.epoch.encode(out);
                query.chaos.encode(out);
                query.chunk_pruning.encode(out);
            }
            Request::Append(append) => {
                out.push(REQ_APPEND);
                append.shard.encode(out);
                append.delta.encode(out);
                append.epoch.encode(out);
            }
            Request::Delay { micros } => {
                out.push(REQ_DELAY);
                micros.encode(out);
            }
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Request> {
        Ok(match r.u8()? {
            REQ_PING => Request::Ping,
            REQ_LOAD => Request::Load(Box::new(LoadRequest {
                shard: r.u64()?,
                schema: Schema::decode(r)?,
                rows: Vec::<Row>::decode(r)?,
                build: BuildOptions::decode(r)?,
                threads: r.u64()?,
                cache_budget: r.u64()?,
                cache_entries: r.u64()?,
                epoch: r.u64()?,
                name: String::decode(r)?,
            })),
            REQ_ATTACH => Request::Attach(AttachRequest {
                children: Vec::decode(r)?,
                compress: bool::decode(r)?,
                cache_entries: r.u64()?,
                epoch: r.u64()?,
                name: String::decode(r)?,
            }),
            REQ_QUERY => Request::Query(Box::new(QueryRequest {
                query: AnalyzedQuery::decode(r)?,
                budget: Duration::decode(r)?,
                hedge_micros: r.u64()?,
                killed: Vec::decode(r)?,
                epoch: r.u64()?,
                chaos: Vec::decode(r)?,
                chunk_pruning: bool::decode(r)?,
            })),
            REQ_APPEND => Request::Append(Box::new(AppendRequest {
                shard: r.u64()?,
                delta: TableDelta::decode(r)?,
                epoch: r.u64()?,
            })),
            REQ_DELAY => Request::Delay { micros: r.u64()? },
            REQ_SHUTDOWN => Request::Shutdown,
            other => return Err(Error::Data(format!("wire: invalid request tag {other}"))),
        })
    }
}

impl Encode for ChildSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChildSpec::Leaf { shard, primary, replica, meta } => {
                out.push(0);
                shard.encode(out);
                primary.encode(out);
                replica.encode(out);
                meta.encode(out);
            }
            ChildSpec::Node { addr, height, metas } => {
                out.push(1);
                addr.encode(out);
                height.encode(out);
                metas.encode(out);
            }
        }
    }
}

impl Decode for ChildSpec {
    fn decode(r: &mut Reader<'_>) -> Result<ChildSpec> {
        Ok(match r.u8()? {
            0 => ChildSpec::Leaf {
                shard: r.u64()?,
                primary: Addr::decode(r)?,
                replica: Option::decode(r)?,
                meta: ShardMeta::decode(r)?,
            },
            1 => {
                ChildSpec::Node { addr: Addr::decode(r)?, height: r.u64()?, metas: Vec::decode(r)? }
            }
            other => return Err(Error::Data(format!("wire: invalid child-spec tag {other}"))),
        })
    }
}

impl Encode for ShardReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.latency.encode(out);
        self.queue.encode(out);
        self.failover.encode(out);
        self.hedged.encode(out);
        self.cache_hit.encode(out);
    }
}

impl Decode for ShardReport {
    fn decode(r: &mut Reader<'_>) -> Result<ShardReport> {
        Ok(ShardReport {
            shard: r.u64()?,
            latency: Duration::decode(r)?,
            queue: Duration::decode(r)?,
            failover: bool::decode(r)?,
            hedged: bool::decode(r)?,
            cache_hit: bool::decode(r)?,
        })
    }
}

impl Encode for SubtreeAnswer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.partial.encode(out);
        self.stats.encode(out);
        self.reports.encode(out);
    }
}

impl Decode for SubtreeAnswer {
    fn decode(r: &mut Reader<'_>) -> Result<SubtreeAnswer> {
        Ok(SubtreeAnswer {
            partial: PartialResult::decode(r)?,
            stats: ScanStats::decode(r)?,
            reports: Vec::decode(r)?,
        })
    }
}

const RESP_OK: u8 = 0;
const RESP_ANSWER: u8 = 1;
const RESP_ERR: u8 = 2;
const RESP_MALFORMED: u8 = 3;
const RESP_LOADED: u8 = 4;
const RESP_FAULT: u8 = 5;

impl Encode for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(RESP_OK),
            Response::Loaded(meta) => {
                out.push(RESP_LOADED);
                meta.encode(out);
            }
            Response::Answer(answer) => {
                out.push(RESP_ANSWER);
                answer.encode(out);
            }
            Response::Err(message) => {
                out.push(RESP_ERR);
                message.encode(out);
            }
            Response::Malformed(message) => {
                out.push(RESP_MALFORMED);
                message.encode(out);
            }
            Response::Fault(fault) => {
                out.push(RESP_FAULT);
                fault.encode(out);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Response> {
        Ok(match r.u8()? {
            RESP_OK => Response::Ok,
            RESP_LOADED => Response::Loaded(Box::new(ShardMeta::decode(r)?)),
            RESP_ANSWER => Response::Answer(Box::new(SubtreeAnswer::decode(r)?)),
            RESP_ERR => Response::Err(String::decode(r)?),
            RESP_MALFORMED => Response::Malformed(String::decode(r)?),
            RESP_FAULT => Response::Fault(RpcError::decode(r)?),
            other => return Err(Error::Data(format!("wire: invalid response tag {other}"))),
        })
    }
}

// --- framing ---------------------------------------------------------------

/// Encode one frame into bytes: header + (possibly compressed) payload.
/// `compress` is the sender's negotiated mode — it both advertises
/// compressed replies (`FRAME_FLAG_COMPRESS_OK`) and compresses this
/// payload when that saves bytes.
pub fn encode_frame<T: Encode>(message: &T, compress: bool) -> Result<Vec<u8>> {
    let payload = wire::to_bytes(message);
    // The cap applies to the *decompressed* payload (the receiver enforces
    // the same bound after inflation), so an oversized message fails fast
    // here instead of after shipping a compressed frame the peer must NAK.
    if payload.len() > MAX_FRAME_BYTES as usize {
        return Err(Error::Data(format!("rpc: frame of {} bytes exceeds cap", payload.len())));
    }
    let mut flags = 0u8;
    let body = if compress {
        flags |= wire::FRAME_FLAG_COMPRESS_OK;
        if payload.len() >= MIN_COMPRESS_BYTES {
            let compressed = frame_codec().compress(&payload);
            if compressed.len() < payload.len() {
                flags |= wire::FRAME_FLAG_COMPRESSED;
                compressed
            } else {
                payload
            }
        } else {
            payload
        }
    } else {
        payload
    };
    let len = u32::try_from(body.len())
        .map_err(|_| Error::Internal("rpc: frame body exceeds the checked payload size".into()))?;
    let mut out = Vec::with_capacity(FrameHeader::BYTES + body.len());
    out.extend_from_slice(&FrameHeader { flags, len }.to_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decode a frame body (bytes after the header) according to its flags.
fn decode_body<T: Decode>(flags: u8, body: &[u8]) -> Result<T> {
    if flags & wire::FRAME_FLAG_COMPRESSED != 0 {
        // The Zippy frame leads with `varint(uncompressed_len)` and its
        // decoder never produces (much) more than that claim, so
        // validating the claim *before* inflation bounds the allocation a
        // hostile or corrupt frame can drive — the corruption contract is
        // `Err`, never an OOM abort.
        let mut pos = 0;
        let claimed = pd_compress::varint::read_u64(body, &mut pos)
            .map_err(|e| Error::Data(format!("rpc: corrupt compressed frame: {e}")))?;
        if claimed > MAX_FRAME_BYTES as u64 {
            return Err(Error::Data(format!(
                "rpc: compressed frame claims {claimed} bytes (cap {MAX_FRAME_BYTES})"
            )));
        }
        let payload = frame_codec()
            .decompress(body)
            .map_err(|e| Error::Data(format!("rpc: corrupt compressed frame: {e}")))?;
        if payload.len() > MAX_FRAME_BYTES as usize {
            return Err(Error::Data(format!(
                "rpc: compressed frame inflates to {} bytes (cap {MAX_FRAME_BYTES})",
                payload.len()
            )));
        }
        wire::from_bytes(&payload)
    } else {
        wire::from_bytes(body)
    }
}

/// Write one frame.
pub fn write_frame<T: Encode>(stream: &mut impl Write, message: &T, compress: bool) -> Result<()> {
    let frame = encode_frame(message, compress)?;
    stream.write_all(&frame)?;
    stream.flush()?;
    Ok(())
}

/// Read one frame plus its negotiation: `Ok(None)` on clean EOF (peer
/// closed between frames); otherwise the message and whether the sender
/// advertised that compressed replies are welcome.
pub fn read_frame_negotiated<T: Decode>(stream: &mut impl Read) -> Result<Option<(T, bool)>> {
    let mut header_bytes = [0u8; FrameHeader::BYTES];
    match stream.read_exact(&mut header_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let header = FrameHeader::parse(header_bytes)?;
    if header.len > MAX_FRAME_BYTES {
        return Err(Error::Data(format!("rpc: corrupt frame length {}", header.len)));
    }
    let mut body = vec![0u8; header.len as usize];
    stream.read_exact(&mut body)?;
    let accepts_compressed = header.flags & wire::FRAME_FLAG_COMPRESS_OK != 0;
    decode_body(header.flags, &body).map(|message| Some((message, accepts_compressed)))
}

/// Read one frame, ignoring the negotiation bit.
pub fn read_frame<T: Decode>(stream: &mut impl Read) -> Result<Option<T>> {
    Ok(read_frame_negotiated(stream)?.map(|(message, _)| message))
}

/// Classify an I/O failure into the [`RpcError`] taxonomy so retry and
/// hedge policy can dispatch on the variant.
fn io_fault(context: &str, e: &std::io::Error) -> RpcError {
    use std::io::ErrorKind;
    match e.kind() {
        // `NotFound` is a unix socket whose path is not (yet) bound — the
        // filesystem spelling of a refused connect.
        ErrorKind::ConnectionRefused | ErrorKind::NotFound => {
            RpcError::ConnRefused(format!("{context}: {e}"))
        }
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            RpcError::Deadline(format!("{context}: {e}"))
        }
        _ => RpcError::PeerGone(format!("{context}: {e}")),
    }
}

/// The time left until `deadline`, or a typed deadline-expired error.
fn budget_left(deadline: Instant) -> Result<Duration> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(Error::Rpc(RpcError::Deadline("rpc: call budget expired".into())));
    }
    Ok(left)
}

/// `read_exact` against an *absolute* deadline. Socket read timeouts are
/// per-syscall, so a peer trickling one byte per interval would reset a
/// plain `read_exact`'s clock forever; here the remaining budget shrinks
/// across syscalls and expiry is checked between them.
fn read_exact_deadline(stream: &mut Stream, buf: &mut [u8], deadline: Instant) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        stream.set_read_timeout(Some(budget_left(deadline)?))?;
        let rest = buf
            .get_mut(filled..)
            .ok_or_else(|| Error::Internal("rpc: read cursor out of bounds".into()))?;
        match stream.read(rest) {
            Ok(0) => {
                return Err(Error::Rpc(RpcError::PeerGone(
                    "rpc: peer closed the connection mid-frame".into(),
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::Rpc(io_fault("rpc read", &e))),
        }
    }
    Ok(())
}

/// Read one response frame, enforcing `deadline` absolutely across the
/// header read, the payload read and every syscall in between. Decode
/// failures (version mismatch aside, which is already typed) surface as
/// typed [`RpcError::Decode`] — torn bytes on the wire, not app errors.
fn read_frame_deadline<T: Decode>(stream: &mut Stream, deadline: Instant) -> Result<T> {
    let typed_decode = |e: Error| match e {
        Error::Rpc(f) => Error::Rpc(f),
        other => Error::Rpc(RpcError::Decode(other.to_string())),
    };
    let mut header_bytes = [0u8; FrameHeader::BYTES];
    read_exact_deadline(stream, &mut header_bytes, deadline)?;
    let header = FrameHeader::parse(header_bytes).map_err(typed_decode)?;
    if header.len > MAX_FRAME_BYTES {
        return Err(Error::Rpc(RpcError::Decode(format!(
            "rpc: corrupt frame length {}",
            header.len
        ))));
    }
    let mut body = vec![0u8; header.len as usize];
    read_exact_deadline(stream, &mut body, deadline)?;
    decode_body(header.flags, &body).map_err(typed_decode)
}

// --- client ----------------------------------------------------------------

/// Exponential backoff with seeded full jitter: sleep somewhere in
/// `[backoff/2, backoff]`, never past `left`, then double toward the cap.
/// Shared by connect retries and announce-file polling — the fix for the
/// old fixed-2ms busy loops.
pub(crate) fn backoff_sleep(backoff: &mut Duration, cap: Duration, left: Duration, rng: &mut Rng) {
    let micros = backoff.as_micros() as u64;
    let jittered = Duration::from_micros(rng.range_u64(micros / 2, micros + 1));
    std::thread::sleep(jittered.min(left));
    *backoff = (*backoff * 2).min(cap);
}

/// Largest backoff step between connect / announce retries.
pub(crate) const BACKOFF_CAP: Duration = Duration::from_millis(50);

/// A handle that cancels one in-flight call from *outside* the thread
/// blocked on it: the hedge race hands the loser's token to the winner's
/// side, which shuts the loser's socket down so its thread unblocks
/// immediately instead of waiting out the budget.
#[derive(Clone)]
pub struct CancelToken {
    slot: Arc<pd_common::sync::Mutex<Option<Stream>>>,
}

impl CancelToken {
    /// Shut down the connection this token watches (no-op when the client
    /// is not connected — a cancelled connect simply never sends).
    pub fn cancel(&self) {
        if let Some(stream) = self.slot.lock().take() {
            let _ = stream.shutdown();
        }
    }
}

/// One parent→child connection, reconnecting on demand. Calls are strictly
/// request/response; a timed-out call poisons the connection (a late
/// answer would desynchronize framing), so the stream is dropped and the
/// next call reconnects.
pub struct RpcClient {
    addr: Addr,
    stream: Option<Stream>,
    /// Negotiated mode: compress outgoing payloads and advertise that
    /// compressed replies are welcome.
    compress: bool,
    /// A second handle on the live stream, shared with [`CancelToken`]s.
    cancel_slot: Arc<pd_common::sync::Mutex<Option<Stream>>>,
    /// Seeded jitter for connect backoff — keyed off the address so two
    /// clients hammering the same crashed worker desynchronize, while a
    /// given tree's retry schedule stays reproducible.
    jitter: Rng,
}

impl RpcClient {
    pub fn new(addr: Addr, compress: bool) -> RpcClient {
        let jitter = Rng::seed_from_u64(fx_hash64(&addr.to_string()));
        RpcClient {
            addr,
            stream: None,
            compress,
            cancel_slot: Arc::new(pd_common::sync::Mutex::new(None)),
            jitter,
        }
    }

    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// A token that can cancel this client's in-flight call from another
    /// thread. Valid across reconnects: the slot tracks the live stream.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken { slot: Arc::clone(&self.cancel_slot) }
    }

    fn adopt(&mut self, stream: Stream) {
        *self.cancel_slot.lock() = stream.try_clone().ok();
        self.stream = Some(stream);
    }

    fn drop_stream(&mut self) {
        self.stream = None;
        self.cancel_slot.lock().take();
    }

    /// Connect, retrying with jittered exponential backoff until `timeout`
    /// — workers need a moment between `spawn` and `bind`.
    pub fn connect_with_retry(&mut self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Duration::from_millis(1);
        loop {
            match self.addr.connect() {
                Ok(stream) => {
                    self.adopt(stream);
                    return Ok(());
                }
                Err(e) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(Error::Rpc(io_fault(
                            &format!(
                                "rpc: worker at {} not reachable after {timeout:?}",
                                self.addr
                            ),
                            &e,
                        )));
                    }
                    backoff_sleep(&mut backoff, BACKOFF_CAP, left, &mut self.jitter);
                }
            }
        }
    }

    /// Send `request`, wait up to `timeout` for the response. Any failure
    /// (connect, send, deadline expiry, corrupt frame) drops the
    /// connection and surfaces as a typed `Err` — the caller's failover
    /// decision dispatches on the [`RpcError`] variant.
    pub fn call(&mut self, request: &Request, timeout: Duration) -> Result<Response> {
        let result = self.call_inner(request, timeout);
        if result.is_err() {
            self.drop_stream();
        }
        result
    }

    fn call_inner(&mut self, request: &Request, timeout: Duration) -> Result<Response> {
        // One absolute deadline covers the whole call: the write budget
        // and read budget are not additive, and the remaining budget
        // shrinks across every syscall (see `read_exact_deadline`), so a
        // stalled *or trickling* worker expires on time either way.
        let deadline = Instant::now() + timeout.max(Duration::from_millis(1));
        if self.stream.is_none() {
            self.connect_by(deadline)?;
        }
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| Error::Internal("rpc: stream vanished after connect".into()))?;
        stream.set_write_timeout(Some(budget_left(deadline)?))?;
        write_frame(stream, request, self.compress)?;
        read_frame_deadline::<Response>(stream, deadline)
    }

    /// Connect within the call deadline. Only a refused connect is
    /// retried (the peer may be restarting), and only a *bounded* number
    /// of times — a crashed worker must fail over in milliseconds, not
    /// block its hedge race for the rest of the budget (connects cannot
    /// be interrupted by a [`CancelToken`]).
    fn connect_by(&mut self, deadline: Instant) -> Result<()> {
        const MAX_CONNECT_ATTEMPTS: u32 = 5;
        let mut backoff = Duration::from_millis(1);
        for attempt in 1.. {
            match self.addr.connect() {
                Ok(stream) => {
                    self.adopt(stream);
                    return Ok(());
                }
                Err(e) => {
                    let fault = io_fault(&format!("rpc: connect to {}", self.addr), &e);
                    let left = deadline.saturating_duration_since(Instant::now());
                    if !fault.retryable_connect()
                        || left.is_zero()
                        || attempt >= MAX_CONNECT_ATTEMPTS
                    {
                        return Err(Error::Rpc(fault));
                    }
                    backoff_sleep(&mut backoff, BACKOFF_CAP, left, &mut self.jitter);
                }
            }
        }
        unreachable!("the retry loop returns on success or at MAX_CONNECT_ATTEMPTS")
    }
}

// --- shared fan-out (driver root and merge servers) ------------------------

/// A child the current node queries: its spec plus lazily connected
/// clients. Clients sit behind mutexes so a `&self` fan-out can run one
/// thread per child (concurrent queries to the *same* child serialize,
/// which is exactly a per-connection queue).
pub struct ChildHandle {
    pub spec: ChildSpec,
    primary: pd_common::sync::Mutex<RpcClient>,
    replica: Option<pd_common::sync::Mutex<RpcClient>>,
}

impl ChildHandle {
    pub fn new(spec: ChildSpec, compress: bool) -> ChildHandle {
        let (primary, replica) = match &spec {
            ChildSpec::Leaf { primary, replica, .. } => (primary.clone(), replica.clone()),
            ChildSpec::Node { addr, .. } => (addr.clone(), None),
        };
        ChildHandle {
            spec,
            primary: pd_common::sync::Mutex::new(RpcClient::new(primary, compress)),
            replica: replica.map(|r| pd_common::sync::Mutex::new(RpcClient::new(r, compress))),
        }
    }

    /// The restriction pre-skip: when the shard metadata beneath this
    /// child proves no row can match, synthesize the empty answer locally
    /// — full skip accounting, one `subtrees_pruned` for the edge that
    /// never carried the query, a zero-latency report per shard — and
    /// spend no network hop at all. With chunk pruning enabled the proof
    /// is chunk-granular, so the chunks beneath the edge are additionally
    /// annotated as [`ScanStats::chunks_pruned_remote`] (they still land
    /// in `chunks_skipped` — the annotation records *where* the proof
    /// happened, outside the skip/cache/scan balance).
    fn pruned_answer(&self, count_chunks: bool) -> SubtreeAnswer {
        let mut answer = SubtreeAnswer::empty();
        answer.stats.subtrees_pruned = 1;
        for meta in self.spec.metas() {
            answer.stats.rows_total += meta.rows;
            answer.stats.rows_skipped += meta.rows;
            answer.stats.chunks_total += meta.chunks as usize;
            answer.stats.chunks_skipped += meta.chunks as usize;
            if count_chunks {
                answer.stats.chunks_pruned_remote += meta.chunks as usize;
            }
            answer.reports.push(ShardReport {
                shard: meta.shard,
                latency: Duration::ZERO,
                queue: Duration::ZERO,
                failover: false,
                hedged: false,
                cache_hit: false,
            });
        }
        answer
    }

    /// Query this child, applying the §4 failover rule at leaves: a killed
    /// or unresponsive primary is replaced by its replica — raced in
    /// parallel after the hedge delay, first answer wins. Without a
    /// replica any transport failure is fatal for the query. An
    /// *application* error from a live worker (a `Response::Err`)
    /// propagates instead — the worker answered, so a deterministic error
    /// would only repeat on the replica. The report's latency is
    /// *measured* — the parent's wall clock around the call, transport
    /// and hedging included.
    fn query(&self, request: &QueryRequest) -> Result<SubtreeAnswer> {
        // The prune precedes the kill/failover logic deliberately,
        // mirroring the shard-cache precedent: an answer that never needs
        // the server treats a dead primary as a non-event (no failover
        // recorded). Killed shards without replication are still rejected
        // at the root before any fan-out begins.
        let metas = self.spec.metas();
        let dead = !metas.is_empty()
            && metas.iter().all(|m| {
                if request.chunk_pruning {
                    // Full layered check: shard zone map → blooms → how
                    // many chunks survive. Zero live chunks prune the
                    // edge even when the shard envelope cannot.
                    !meta::may_match(&request.query.restriction, m)
                } else {
                    !meta::shard_may_match(&request.query.restriction, m)
                }
            });
        if dead {
            return Ok(self.pruned_answer(request.chunk_pruning));
        }
        let started = Instant::now();
        let message = Request::Query(Box::new(request.clone()));
        let budget = request.budget;
        match &self.spec {
            ChildSpec::Node { addr, .. } => {
                // A merge server inherits the whole remaining budget — it
                // decrements and forwards it, so no height scaling is
                // needed: the budget *is* the end-to-end clock.
                // pd-analysis: allow(lock-order) -- the client mutex serializes one request/response pair per connection; the guard must span the call
                match unpack(self.primary.lock().call(&message, budget)?)? {
                    Some(answer) => Ok(answer),
                    None => Err(Error::Data(format!("rpc: merge server {addr} sent no answer"))),
                }
            }
            ChildSpec::Leaf { shard, .. } => {
                let shard = *shard;
                let killed = request.killed.contains(&shard);
                let hedged = AtomicBool::new(false);
                let outcome = match (&self.replica, killed) {
                    // FailureModel kill without a replica: rejected at
                    // the root already, but guard the direct path too.
                    (None, true) => Err(no_replica_fail(
                        shard,
                        Error::Rpc(RpcError::PeerGone("primary killed mid-query".into())),
                    )),
                    // pd-analysis: allow(lock-order) -- per-connection request/response serialization; the guard must span the call
                    (None, false) => match classify(self.primary.lock().call(&message, budget)) {
                        LeafOutcome::Answer(answer) => Ok((answer, false)),
                        LeafOutcome::Fatal(e) => Err(e),
                        LeafOutcome::Failed(e) => Err(no_replica_fail(shard, e)),
                    },
                    // A killed primary is simply never contacted — the
                    // replica serves alone, same as a lost race.
                    (Some(replica), true) => {
                        // pd-analysis: allow(lock-order) -- per-connection request/response serialization; the guard must span the call
                        match classify(replica.lock().call(&message, budget)) {
                            LeafOutcome::Answer(answer) => Ok((answer, true)),
                            LeafOutcome::Fatal(e) => Err(e),
                            LeafOutcome::Failed(e) => Err(both_failed(
                                shard,
                                Error::Rpc(RpcError::PeerGone("primary killed mid-query".into())),
                                e,
                            )),
                        }
                    }
                    // Hedging disabled: the old sequential failover, with
                    // the replica living on whatever budget remains.
                    (Some(replica), false) if request.hedge_micros == 0 => {
                        // pd-analysis: allow(lock-order) -- per-connection request/response serialization; the guard must span the call
                        match classify(self.primary.lock().call(&message, budget)) {
                            LeafOutcome::Answer(answer) => Ok((answer, false)),
                            LeafOutcome::Fatal(e) => Err(e),
                            LeafOutcome::Failed(pe) => {
                                let left = budget.saturating_sub(started.elapsed());
                                // pd-analysis: allow(lock-order) -- per-connection request/response serialization; the guard must span the call
                                match classify(replica.lock().call(&message, left)) {
                                    LeafOutcome::Answer(answer) => Ok((answer, true)),
                                    LeafOutcome::Fatal(e) => Err(e),
                                    LeafOutcome::Failed(re) => Err(both_failed(shard, pe, re)),
                                }
                            }
                        }
                    }
                    (Some(replica), false) => self.race(replica, &message, request, &hedged, shard),
                };
                let (mut answer, failover) = outcome?;
                let elapsed = started.elapsed();
                let hedged = hedged.load(Ordering::Relaxed);
                for report in &mut answer.reports {
                    report.latency = elapsed;
                    report.failover = failover;
                    report.hedged = hedged;
                }
                Ok(answer)
            }
        }
    }

    /// The hedged replica race. The primary is asked immediately; if it
    /// has neither answered nor failed within the hedge delay, the
    /// replica is launched *in parallel* and the first answer wins — the
    /// loser's socket is shut down so its thread unblocks right away. A
    /// primary that fails *fast* (refused connect, reset) skips the wait
    /// and fails over immediately; one that fails *slow* loses the race
    /// it is already in. Returns `(answer, answered_by_replica)`.
    fn race(
        &self,
        replica: &pd_common::sync::Mutex<RpcClient>,
        message: &Request,
        request: &QueryRequest,
        hedged: &AtomicBool,
        shard: u64,
    ) -> Result<(SubtreeAnswer, bool)> {
        let budget = request.budget;
        let hedge = Duration::from_micros(request.hedge_micros);
        let primary_token = self.primary.lock().cancel_token();
        let replica_token = replica.lock().cancel_token();
        let (outcome_tx, outcome_rx) = mpsc::channel::<(bool, LeafOutcome)>();
        let (primary_done_tx, primary_done_rx) = mpsc::channel::<bool>();
        std::thread::scope(|scope| {
            let primary_tx = outcome_tx.clone();
            scope.spawn(move || {
                // pd-analysis: allow(lock-order) -- per-connection request/response serialization; the guard must span the call
                let outcome = classify(self.primary.lock().call(message, budget));
                let answered = matches!(outcome, LeafOutcome::Answer(_));
                let _ = primary_done_tx.send(answered);
                let _ = primary_tx.send((false, outcome));
            });
            let replica_tx = outcome_tx;
            scope.spawn(move || {
                match primary_done_rx.recv_timeout(hedge) {
                    // The primary answered inside the hedge window — the
                    // common, healthy case: no replica call at all.
                    Ok(true) => return,
                    // The primary failed fast: immediate failover, not a
                    // hedge (the race was never close).
                    Ok(false) | Err(mpsc::RecvTimeoutError::Disconnected) => {}
                    // Hedge fires: the primary is still out there.
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        hedged.store(true, Ordering::Relaxed);
                    }
                }
                // pd-analysis: allow(lock-order) -- per-connection request/response serialization; the guard must span the call
                let outcome = classify(replica.lock().call(message, budget));
                let _ = replica_tx.send((true, outcome));
            });
            let mut failures: Vec<(bool, Error)> = Vec::new();
            while let Ok((is_replica, outcome)) = outcome_rx.recv() {
                match outcome {
                    LeafOutcome::Answer(answer) => {
                        // First answer wins; unblock the loser now.
                        if is_replica {
                            primary_token.cancel();
                        } else {
                            replica_token.cancel();
                        }
                        return Ok((answer, is_replica));
                    }
                    LeafOutcome::Fatal(e) => {
                        primary_token.cancel();
                        replica_token.cancel();
                        return Err(e);
                    }
                    LeafOutcome::Failed(e) => failures.push((is_replica, e)),
                }
            }
            // Both copies sent a Failed (the channel closed with no
            // Answer): combine, preferring the primary's typed variant.
            let primary_err = failures
                .iter()
                .position(|(is_replica, _)| !is_replica)
                .map(|i| failures.remove(i).1)
                .unwrap_or_else(|| Error::Rpc(RpcError::PeerGone("primary never ran".into())));
            let replica_err = failures
                .pop()
                .map(|(_, e)| e)
                .unwrap_or_else(|| Error::Rpc(RpcError::PeerGone("replica never ran".into())));
            Err(both_failed(shard, primary_err, replica_err))
        })
    }
}

/// How a leaf reply steers the race: an answer wins; a *transport*
/// failure (typed fault, torn frame, dead socket) lets the other copy
/// win; a deterministic application error aborts the race — the replica
/// would only repeat it.
enum LeafOutcome {
    Answer(SubtreeAnswer),
    Failed(Error),
    Fatal(Error),
}

fn classify(result: Result<Response>) -> LeafOutcome {
    match result {
        Ok(Response::Answer(answer)) => LeafOutcome::Answer(*answer),
        Ok(Response::Err(message)) => LeafOutcome::Fatal(Error::Data(message)),
        Ok(Response::Malformed(message)) => LeafOutcome::Failed(Error::Rpc(RpcError::Decode(
            format!("peer rejected the request frame: {message}"),
        ))),
        Ok(Response::Fault(fault)) => LeafOutcome::Failed(Error::Rpc(fault)),
        Ok(Response::Ok | Response::Loaded(_)) => {
            LeafOutcome::Fatal(Error::Data("leaf acked a query without an answer".into()))
        }
        Err(e) => LeafOutcome::Failed(e),
    }
}

/// A shard with no replica lost its only copy: fatal, with the message
/// carrying the shard id and the replication note the driver and tests
/// key on, and the typed variant of the underlying fault preserved.
fn no_replica_fail(shard: u64, e: Error) -> Error {
    let message = format!("shard {shard}: primary failed ({e}) and replication is disabled");
    retag(e, message)
}

/// Both copies of a shard failed: fatal, preferring the primary's typed
/// variant (the replica usually just repeats the budget expiry).
fn both_failed(shard: u64, primary: Error, replica: Error) -> Error {
    let message = format!(
        "shard {shard}: primary and replica both failed (primary: {primary}; replica: {replica})"
    );
    retag(primary, message)
}

/// Rewrap `message` in `e`'s typed variant when it has one.
fn retag(e: Error, message: String) -> Error {
    match e {
        Error::Rpc(f) => match RpcError::from_tag(f.tag(), message.clone()) {
            Some(fault) => Error::Rpc(fault),
            // A tag this taxonomy doesn't know cannot round-trip; degrade to
            // untyped rather than panic on a future variant.
            None => Error::Data(message),
        },
        _ => Error::Data(message),
    }
}

/// Split a well-formed response into answer / application error; a bare
/// ack to a query is a protocol violation, and a `Malformed` NAK from a
/// node with no replica to retry is fatal.
fn unpack(response: Response) -> Result<Option<SubtreeAnswer>> {
    match response {
        Response::Answer(answer) => Ok(Some(*answer)),
        Response::Err(message) => Err(Error::Data(message)),
        Response::Fault(fault) => Err(Error::Rpc(fault)),
        Response::Malformed(message) => {
            Err(Error::Data(format!("rpc: peer rejected the request frame: {message}")))
        }
        Response::Ok | Response::Loaded(_) => Ok(None),
    }
}

/// Fan a query out to every child concurrently and fold the answers in
/// fixed child order — the same associative merge the in-process cluster
/// uses, so the tree shape cannot change the result. Children pruned by
/// shard metadata never spawn a network hop (their synthesized skip
/// answers fold in the same order).
pub fn fan_out(children: &[ChildHandle], request: &QueryRequest) -> Result<SubtreeAnswer> {
    let answers: Vec<Result<SubtreeAnswer>> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            children.iter().map(|child| scope.spawn(move || child.query(request))).collect();
        handles.into_iter().map(|h| h.join().expect("child query thread panicked")).collect()
    });
    let mut merged = SubtreeAnswer::empty();
    for answer in answers {
        let answer = answer?;
        merged.partial.merge(answer.partial)?;
        merged.stats += &answer.stats;
        merged.reports.extend(answer.reports);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::{DataType, Value};
    use pd_sql::{analyze, parse_query};

    fn analyzed(sql: &str) -> AnalyzedQuery {
        analyze(&parse_query(sql).unwrap()).unwrap()
    }

    fn sample_meta() -> ShardMeta {
        let schema = Schema::of(&[("k", DataType::Str)]);
        let rows = vec![Row(vec![Value::from("x")]), Row(vec![Value::from("y")])];
        let mut meta = ShardMeta::summarize(3, &schema, &rows);
        meta.chunks = 1;
        meta
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Ping,
            Request::Load(Box::new(LoadRequest {
                shard: 3,
                schema: Schema::of(&[("k", DataType::Str)]),
                rows: vec![Row(vec![pd_common::Value::from("x")])],
                build: BuildOptions::production(&["k"]),
                threads: 2,
                cache_budget: 1 << 20,
                cache_entries: 64,
                epoch: 3,
                name: "l3p".into(),
            })),
            Request::Attach(AttachRequest {
                children: vec![
                    ChildSpec::Leaf {
                        shard: 0,
                        primary: Addr::Unix("/tmp/a.sock".into()),
                        replica: Some(Addr::Tcp("127.0.0.1:9001".into())),
                        meta: sample_meta(),
                    },
                    ChildSpec::Node {
                        addr: Addr::Tcp("127.0.0.1:9000".into()),
                        height: 2,
                        metas: vec![sample_meta(), sample_meta()],
                    },
                ],
                compress: true,
                cache_entries: 32,
                epoch: 7,
                name: "m1_0".into(),
            }),
            Request::Query(Box::new(QueryRequest {
                query: analyzed("SELECT COUNT(*) FROM t WHERE k IN ('a','b')"),
                budget: Duration::from_millis(250),
                hedge_micros: 1500,
                killed: vec![1, 3],
                epoch: 7,
                chaos: vec![
                    crate::chaos::ChaosDirective {
                        node: "l1p".into(),
                        fault: crate::chaos::ChaosFault::Reset,
                    },
                    crate::chaos::ChaosDirective {
                        node: "m1_0".into(),
                        fault: crate::chaos::ChaosFault::Delay(Duration::from_millis(3)),
                    },
                ],
                chunk_pruning: true,
            })),
            Request::Append(Box::new(AppendRequest {
                shard: 2,
                delta: TableDelta::from_columns(
                    Schema::of(&[("k", DataType::Str), ("n", DataType::Int)]),
                    &[
                        &[Value::from("a"), Value::from("b"), Value::from("a")],
                        &[Value::Int(1), Value::Int(2), Value::Int(3)],
                    ],
                )
                .unwrap(),
                epoch: 9,
            })),
            Request::Delay { micros: 5000 },
            Request::Shutdown,
        ];
        for request in requests {
            let back: Request = wire::from_bytes(&wire::to_bytes(&request)).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let answer = SubtreeAnswer {
            partial: PartialResult::default(),
            stats: ScanStats {
                rows_total: 9,
                subtrees_pruned: 1,
                chunks_pruned_remote: 4,
                ..Default::default()
            },
            reports: vec![ShardReport {
                shard: 1,
                latency: Duration::from_micros(77),
                queue: Duration::from_micros(3),
                failover: true,
                hedged: true,
                cache_hit: true,
            }],
        };
        for response in [
            Response::Ok,
            Response::Loaded(Box::new(sample_meta())),
            Response::Answer(Box::new(answer)),
            Response::Err("boom".into()),
            Response::Malformed("bad frame".into()),
            Response::Fault(RpcError::Deadline("budget spent in queue".into())),
            Response::Fault(RpcError::Overloaded("shed".into())),
        ] {
            let back: Response = wire::from_bytes(&wire::to_bytes(&response)).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn addrs_parse_and_render() {
        let unix = Addr::parse("unix:/tmp/w.sock").unwrap();
        assert_eq!(unix, Addr::Unix("/tmp/w.sock".into()));
        assert_eq!(unix.to_string(), "unix:/tmp/w.sock");
        let tcp = Addr::parse("tcp:127.0.0.1:4000").unwrap();
        assert_eq!(tcp, Addr::Tcp("127.0.0.1:4000".into()));
        assert_eq!(Addr::parse(&tcp.to_string()).unwrap(), tcp);
        // Bare paths are unix shorthand; garbage is rejected.
        assert_eq!(Addr::parse("/tmp/w.sock").unwrap(), Addr::Unix("/tmp/w.sock".into()));
        assert!(Addr::parse("tcp:noport").is_err());
        assert!(Addr::parse("ipx:whatever").is_err());
    }

    #[test]
    fn frames_round_trip_over_a_socket_pair() {
        let (a, b) = UnixStream::pair().unwrap();
        let (mut a, mut b) = (Stream::Unix(a), Stream::Unix(b));
        write_frame(&mut a, &Request::Ping, false).unwrap();
        write_frame(&mut a, &Request::Delay { micros: 9 }, true).unwrap();
        assert_eq!(read_frame::<Request>(&mut b).unwrap(), Some(Request::Ping));
        let (delay, accepts) = read_frame_negotiated::<Request>(&mut b).unwrap().unwrap();
        assert_eq!(delay, Request::Delay { micros: 9 });
        assert!(accepts, "compress-mode senders advertise compressed replies");
        drop(a);
        assert_eq!(read_frame::<Request>(&mut b).unwrap(), None, "clean EOF");
    }

    #[test]
    fn frames_round_trip_over_tcp_loopback() {
        let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut stream = listener.accept().unwrap();
            let (request, accepts) =
                read_frame_negotiated::<Request>(&mut stream).unwrap().unwrap();
            write_frame(&mut stream, &Response::Ok, accepts).unwrap();
            request
        });
        let mut stream = addr.connect().unwrap();
        write_frame(&mut stream, &Request::Ping, true).unwrap();
        assert_eq!(read_frame::<Response>(&mut stream).unwrap(), Some(Response::Ok));
        assert_eq!(server.join().unwrap(), Request::Ping);
    }

    #[test]
    fn large_frames_compress_and_round_trip() {
        // A Load full of repetitive rows: compressible, and big enough to
        // clear the threshold.
        let schema = Schema::of(&[("k", DataType::Str)]);
        let rows: Vec<Row> = (0..500).map(|_| Row(vec![Value::from("constant")])).collect();
        let request = Request::Load(Box::new(LoadRequest {
            shard: 0,
            schema,
            rows,
            build: BuildOptions::basic(),
            threads: 1,
            cache_budget: 1 << 20,
            cache_entries: 0,
            epoch: 1,
            name: "l0p".into(),
        }));
        let raw = encode_frame(&request, false).unwrap();
        let compressed = encode_frame(&request, true).unwrap();
        assert!(
            compressed.len() * 2 < raw.len(),
            "repetitive load must shrink ≥2×: {} vs {}",
            compressed.len(),
            raw.len()
        );
        for frame in [raw, compressed] {
            let (back, _) =
                read_frame_negotiated::<Request>(&mut frame.as_slice()).unwrap().unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn corrupt_frame_lengths_are_rejected() {
        let (a, b) = UnixStream::pair().unwrap();
        let (mut a, mut b) = (Stream::Unix(a), Stream::Unix(b));
        let mut bogus = FrameHeader { flags: 0, len: u32::MAX }.to_bytes().to_vec();
        bogus.extend_from_slice(&[0; 16]);
        a.write_all(&bogus).unwrap();
        assert!(read_frame::<Request>(&mut b).is_err());
    }

    #[test]
    fn pruned_children_answer_without_a_socket() {
        // The child spec points at an address nothing listens on: only the
        // metadata pre-skip can answer, proving no connection is made.
        let meta = sample_meta();
        let rows = meta.rows;
        let handle = ChildHandle::new(
            ChildSpec::Leaf {
                shard: 3,
                primary: Addr::Unix("/nonexistent/prune.sock".into()),
                replica: None,
                meta,
            },
            false,
        );
        let request = QueryRequest {
            query: analyzed("SELECT COUNT(*) FROM t WHERE k = 'absent'"),
            budget: Duration::from_millis(50),
            hedge_micros: 0,
            killed: Vec::new(),
            epoch: 1,
            chaos: Vec::new(),
            chunk_pruning: false,
        };
        let answer = fan_out(std::slice::from_ref(&handle), &request).unwrap();
        assert_eq!(answer.stats.subtrees_pruned, 1);
        assert_eq!(answer.stats.rows_total, rows);
        assert_eq!(answer.stats.rows_skipped, rows);
        assert_eq!(answer.reports.len(), 1);
        assert_eq!(answer.reports[0].shard, 3);
        assert!(answer.partial.groups.is_empty());
        // A restriction that *may* match must reach for the socket — and
        // fail, because nothing listens there.
        let request = QueryRequest {
            query: analyzed("SELECT COUNT(*) FROM t WHERE k = 'x'"),
            budget: Duration::from_millis(50),
            hedge_micros: 0,
            killed: Vec::new(),
            epoch: 1,
            chaos: Vec::new(),
            chunk_pruning: true,
        };
        let err = handle.query(&request).unwrap_err();
        assert!(
            matches!(err, Error::Rpc(RpcError::ConnRefused(_))),
            "a dead-address leaf with no replica fails typed: {err}"
        );
        assert!(err.to_string().contains("shard 3"), "{err}");
        assert!(err.to_string().contains("replication is disabled"), "{err}");
    }
}
