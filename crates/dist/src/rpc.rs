//! The RPC boundary of the §4 computation tree.
//!
//! Frames are length-prefixed (`u32` little endian, capped at
//! [`MAX_FRAME_BYTES`]) over `std::os::unix::net::UnixStream` on loopback —
//! the single-datacenter transport the paper's serving tree assumes. The
//! payload is the dependency-free [`pd_common::wire`] encoding, so a
//! partial result arriving at a merge server is bit-identical to the one
//! the leaf computed.
//!
//! **Deadlines.** Every query request carries a per-hop deadline. The
//! *caller* enforces it with socket read timeouts: a worker that does not
//! answer in time is indistinguishable from a dead one, and the caller
//! fails over to the shard's replica — the same code path a
//! [`crate::FailureModel`] kill takes (a killed primary is simply never
//! contacted). Expiry therefore feeds the existing failover machinery
//! instead of a simulated kill. A parent calling a *merge server* scales
//! its timeout by the subtree height (the child may itself wait out a
//! grandchild's deadline and retry a replica), so one slow leaf cannot
//! cascade into spurious subtree failures.
//!
//! **Corruption.** Both sides decode frames with [`pd_common::wire`]'s
//! checked readers: truncated or corrupt frames produce `Err`, which the
//! failover path treats exactly like a timeout.

use pd_common::wire::{self, Decode, Encode, Reader};
use pd_common::{Error, Result, Row, Schema};
use pd_core::{BuildOptions, PartialResult, ScanStats};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Upper bound on a single frame. A shard's partial result for an
/// interactive group-by is kilobytes; a shard *load* (rows + recipe) is
/// megabytes. A length prefix beyond this is corruption, not data.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// How long a parent waits for a freshly spawned worker to bind its
/// socket and answer the first `Ping`.
pub const STARTUP_TIMEOUT: Duration = Duration::from_secs(30);

/// Timeout for shard loading (table shipping + import on the worker).
pub const LOAD_TIMEOUT: Duration = Duration::from_secs(120);

// --- messages --------------------------------------------------------------

/// Driver/parent → worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / startup handshake. Answered inline, never queued.
    Ping,
    /// Become a leaf: import the shipped rows into a [`pd_core::DataStore`].
    Load(Box<LoadRequest>),
    /// Become a merge server owning a subtree.
    Attach(AttachRequest),
    /// Execute / fan out one query.
    Query(QueryRequest),
    /// Test knob: delay every subsequent query answer by this much (how
    /// the deadline-expiry failover suite makes a worker miss deadlines).
    Delay { micros: u64 },
    /// Exit the worker process (acknowledged first).
    Shutdown,
}

/// Everything a worker needs to become shard `shard`'s server.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRequest {
    pub shard: u64,
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub build: BuildOptions,
    /// Worker thread count for chunk scans (0 = auto, as in-process).
    pub threads: u64,
    /// This shard's share of the uncompressed-cache byte budget.
    pub cache_budget: u64,
}

/// The subtree a merge server owns.
#[derive(Debug, Clone, PartialEq)]
pub struct AttachRequest {
    pub children: Vec<ChildSpec>,
}

/// One child of a tree node — a leaf shard (with its replica, the §4
/// "answer-first-wins" pair) or a deeper merge server.
#[derive(Debug, Clone, PartialEq)]
pub enum ChildSpec {
    Leaf {
        shard: u64,
        primary: String,
        replica: Option<String>,
    },
    /// `height` = levels of tree below this node (≥ 1), used to scale the
    /// caller's timeout.
    Node {
        addr: String,
        height: u64,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    pub sql: String,
    /// Per-hop deadline for leaf answers.
    pub deadline: Duration,
    /// Shards whose primaries the [`crate::FailureModel`] killed for this
    /// query: their parents skip the primary and go straight to the
    /// replica, the same path a deadline expiry takes.
    pub killed: Vec<u64>,
}

/// Per-shard observation, reported up the tree: how long the subquery took
/// as measured by the shard's *parent* (wall clock, including transport
/// and queueing), the time the request spent queued in worker processes,
/// and whether the primary had to be failed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    pub shard: u64,
    pub latency: Duration,
    pub queue: Duration,
    pub failover: bool,
}

/// A subtree's merged answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeAnswer {
    pub partial: PartialResult,
    pub stats: ScanStats,
    pub reports: Vec<ShardReport>,
}

impl SubtreeAnswer {
    fn empty() -> SubtreeAnswer {
        SubtreeAnswer {
            partial: PartialResult::default(),
            stats: ScanStats::default(),
            reports: Vec::new(),
        }
    }
}

/// Worker → parent messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ack for `Ping` / `Load` / `Attach` / `Delay` / `Shutdown`.
    Ok,
    Answer(Box<SubtreeAnswer>),
    /// Application-level failure: the worker is alive and decoded the
    /// request, but executing it failed (SQL error, missing role, ...).
    /// Deterministic — a replica would only repeat it, so no failover.
    Err(String),
    /// Transport-level NAK: the worker could not *decode* the request
    /// frame (truncation/corruption on the wire). For a leaf primary this
    /// is treated like a timeout — the caller re-encodes fresh bytes for
    /// the replica.
    Malformed(String),
}

// --- message codecs --------------------------------------------------------

const REQ_PING: u8 = 0;
const REQ_LOAD: u8 = 1;
const REQ_ATTACH: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_DELAY: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Load(load) => {
                out.push(REQ_LOAD);
                load.shard.encode(out);
                load.schema.encode(out);
                load.rows.encode(out);
                load.build.encode(out);
                load.threads.encode(out);
                load.cache_budget.encode(out);
            }
            Request::Attach(attach) => {
                out.push(REQ_ATTACH);
                attach.children.encode(out);
            }
            Request::Query(query) => {
                out.push(REQ_QUERY);
                query.sql.encode(out);
                query.deadline.encode(out);
                query.killed.encode(out);
            }
            Request::Delay { micros } => {
                out.push(REQ_DELAY);
                micros.encode(out);
            }
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Request> {
        Ok(match r.u8()? {
            REQ_PING => Request::Ping,
            REQ_LOAD => Request::Load(Box::new(LoadRequest {
                shard: r.u64()?,
                schema: Schema::decode(r)?,
                rows: Vec::<Row>::decode(r)?,
                build: BuildOptions::decode(r)?,
                threads: r.u64()?,
                cache_budget: r.u64()?,
            })),
            REQ_ATTACH => Request::Attach(AttachRequest { children: Vec::decode(r)? }),
            REQ_QUERY => Request::Query(QueryRequest {
                sql: String::decode(r)?,
                deadline: Duration::decode(r)?,
                killed: Vec::decode(r)?,
            }),
            REQ_DELAY => Request::Delay { micros: r.u64()? },
            REQ_SHUTDOWN => Request::Shutdown,
            other => return Err(Error::Data(format!("wire: invalid request tag {other}"))),
        })
    }
}

impl Encode for ChildSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChildSpec::Leaf { shard, primary, replica } => {
                out.push(0);
                shard.encode(out);
                primary.encode(out);
                replica.encode(out);
            }
            ChildSpec::Node { addr, height } => {
                out.push(1);
                addr.encode(out);
                height.encode(out);
            }
        }
    }
}

impl Decode for ChildSpec {
    fn decode(r: &mut Reader<'_>) -> Result<ChildSpec> {
        Ok(match r.u8()? {
            0 => ChildSpec::Leaf {
                shard: r.u64()?,
                primary: String::decode(r)?,
                replica: Option::decode(r)?,
            },
            1 => ChildSpec::Node { addr: String::decode(r)?, height: r.u64()? },
            other => return Err(Error::Data(format!("wire: invalid child-spec tag {other}"))),
        })
    }
}

impl Encode for ShardReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.latency.encode(out);
        self.queue.encode(out);
        self.failover.encode(out);
    }
}

impl Decode for ShardReport {
    fn decode(r: &mut Reader<'_>) -> Result<ShardReport> {
        Ok(ShardReport {
            shard: r.u64()?,
            latency: Duration::decode(r)?,
            queue: Duration::decode(r)?,
            failover: bool::decode(r)?,
        })
    }
}

impl Encode for SubtreeAnswer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.partial.encode(out);
        self.stats.encode(out);
        self.reports.encode(out);
    }
}

impl Decode for SubtreeAnswer {
    fn decode(r: &mut Reader<'_>) -> Result<SubtreeAnswer> {
        Ok(SubtreeAnswer {
            partial: PartialResult::decode(r)?,
            stats: ScanStats::decode(r)?,
            reports: Vec::decode(r)?,
        })
    }
}

const RESP_OK: u8 = 0;
const RESP_ANSWER: u8 = 1;
const RESP_ERR: u8 = 2;
const RESP_MALFORMED: u8 = 3;

impl Encode for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Ok => out.push(RESP_OK),
            Response::Answer(answer) => {
                out.push(RESP_ANSWER);
                answer.encode(out);
            }
            Response::Err(message) => {
                out.push(RESP_ERR);
                message.encode(out);
            }
            Response::Malformed(message) => {
                out.push(RESP_MALFORMED);
                message.encode(out);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Response> {
        Ok(match r.u8()? {
            RESP_OK => Response::Ok,
            RESP_ANSWER => Response::Answer(Box::new(SubtreeAnswer::decode(r)?)),
            RESP_ERR => Response::Err(String::decode(r)?),
            RESP_MALFORMED => Response::Malformed(String::decode(r)?),
            other => return Err(Error::Data(format!("wire: invalid response tag {other}"))),
        })
    }
}

// --- framing ---------------------------------------------------------------

/// Write one `[u32 len][payload]` frame.
pub fn write_frame<T: Encode>(stream: &mut impl Write, message: &T) -> Result<()> {
    let payload = wire::to_bytes(message);
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| Error::Data(format!("rpc: frame of {} bytes exceeds cap", payload.len())))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(&payload)?;
    stream.flush()?;
    Ok(())
}

/// Read one frame; `Ok(None)` on clean EOF (peer closed between frames).
pub fn read_frame<T: Decode>(stream: &mut impl Read) -> Result<Option<T>> {
    let mut len_bytes = [0u8; 4];
    match stream.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(Error::Data(format!("rpc: corrupt frame length {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    wire::from_bytes(&payload).map(Some)
}

/// The time left until `deadline`, or a deadline-expired error.
fn budget_left(deadline: Instant) -> Result<Duration> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(Error::Data("rpc: deadline expired".into()));
    }
    Ok(left)
}

/// `read_exact` against an *absolute* deadline. Socket read timeouts are
/// per-syscall, so a peer trickling one byte per interval would reset a
/// plain `read_exact`'s clock forever; here the remaining budget shrinks
/// across syscalls and expiry is checked between them.
fn read_exact_deadline(stream: &mut UnixStream, buf: &mut [u8], deadline: Instant) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        stream.set_read_timeout(Some(budget_left(deadline)?))?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(Error::Data("rpc: peer closed the connection mid-frame".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read one response frame, enforcing `deadline` absolutely across the
/// length-prefix read, the payload read and every syscall in between.
fn read_frame_deadline<T: Decode>(stream: &mut UnixStream, deadline: Instant) -> Result<T> {
    let mut len_bytes = [0u8; 4];
    read_exact_deadline(stream, &mut len_bytes, deadline)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(Error::Data(format!("rpc: corrupt frame length {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_deadline(stream, &mut payload, deadline)?;
    wire::from_bytes(&payload)
}

// --- client ----------------------------------------------------------------

/// One parent→child connection, reconnecting on demand. Calls are strictly
/// request/response; a timed-out call poisons the connection (a late
/// answer would desynchronize framing), so the stream is dropped and the
/// next call reconnects.
pub struct RpcClient {
    addr: PathBuf,
    stream: Option<UnixStream>,
}

impl RpcClient {
    pub fn new(addr: impl Into<PathBuf>) -> RpcClient {
        RpcClient { addr: addr.into(), stream: None }
    }

    pub fn addr(&self) -> &Path {
        &self.addr
    }

    /// Connect, retrying until `timeout` — workers need a moment between
    /// `spawn` and `bind`.
    pub fn connect_with_retry(&mut self, timeout: Duration) -> Result<()> {
        let started = Instant::now();
        loop {
            match UnixStream::connect(&self.addr) {
                Ok(stream) => {
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) if started.elapsed() >= timeout => {
                    return Err(Error::Data(format!(
                        "rpc: worker at {} not reachable after {timeout:?}: {e}",
                        self.addr.display()
                    )));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }

    /// Send `request`, wait up to `timeout` for the response. Any failure
    /// (connect, send, deadline expiry, corrupt frame) drops the
    /// connection and surfaces as `Err` — the caller's failover decision.
    pub fn call(&mut self, request: &Request, timeout: Duration) -> Result<Response> {
        let result = self.call_inner(request, timeout);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn call_inner(&mut self, request: &Request, timeout: Duration) -> Result<Response> {
        // One absolute deadline covers the whole call: the write budget
        // and read budget are not additive, and the remaining budget
        // shrinks across every syscall (see `read_exact_deadline`), so a
        // stalled *or trickling* worker expires on time either way.
        let deadline = Instant::now() + timeout.max(Duration::from_millis(1));
        if self.stream.is_none() {
            let stream = UnixStream::connect(&self.addr).map_err(|e| {
                Error::Data(format!("rpc: connect to {} failed: {e}", self.addr.display()))
            })?;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("connected above");
        stream.set_write_timeout(Some(budget_left(deadline)?))?;
        write_frame(stream, request)?;
        read_frame_deadline::<Response>(stream, deadline)
    }
}

// --- shared fan-out (driver root and merge servers) ------------------------

/// A child the current node queries: its spec plus lazily connected
/// clients. Clients sit behind mutexes so a `&self` fan-out can run one
/// thread per child (concurrent queries to the *same* child serialize,
/// which is exactly a per-connection queue).
pub struct ChildHandle {
    pub spec: ChildSpec,
    primary: pd_common::sync::Mutex<RpcClient>,
    replica: Option<pd_common::sync::Mutex<RpcClient>>,
}

impl ChildHandle {
    pub fn new(spec: ChildSpec) -> ChildHandle {
        let (primary, replica) = match &spec {
            ChildSpec::Leaf { primary, replica, .. } => (primary.clone(), replica.clone()),
            ChildSpec::Node { addr, .. } => (addr.clone(), None),
        };
        ChildHandle {
            spec,
            primary: pd_common::sync::Mutex::new(RpcClient::new(primary)),
            replica: replica.map(|r| pd_common::sync::Mutex::new(RpcClient::new(r))),
        }
    }

    /// The worst-case time a well-behaved answer from this child can take:
    /// a leaf answers within one deadline; a merge server may wait out a
    /// leaf deadline *and* the replica retry at every level below it.
    fn timeout(&self, deadline: Duration) -> Duration {
        match &self.spec {
            ChildSpec::Leaf { .. } => deadline,
            ChildSpec::Node { height, .. } => {
                deadline * 2u32.saturating_mul(*height as u32).max(2) + Duration::from_secs(1)
            }
        }
    }

    /// Query this child, applying the §4 failover rule at leaves: a killed
    /// or unresponsive primary is replaced by its replica; without a
    /// replica the failure is fatal for the query. An *application* error
    /// from a live worker (a `Response::Err`) propagates instead — the
    /// worker answered, so a deterministic error would only repeat on the
    /// replica. The report's latency is *measured* — the parent's wall
    /// clock around the call, transport and failover included.
    fn query(&self, request: &QueryRequest) -> Result<SubtreeAnswer> {
        let started = Instant::now();
        let message = Request::Query(request.clone());
        let timeout = self.timeout(request.deadline);
        match &self.spec {
            ChildSpec::Node { addr, .. } => {
                match unpack(self.primary.lock().call(&message, timeout)?)? {
                    Some(answer) => Ok(answer),
                    None => Err(Error::Data(format!("rpc: merge server {addr} sent no answer"))),
                }
            }
            ChildSpec::Leaf { shard, .. } => {
                let shard = *shard;
                let killed = request.killed.contains(&shard);
                // FailureModel kill: the primary is never contacted;
                // transport failure (deadline expiry, dead socket, a
                // frame the worker could not decode): the primary answer
                // never arrives. All land in `None` — the replica gets a
                // freshly encoded request.
                let primary_answer = if killed {
                    None
                } else {
                    match self.primary.lock().call(&message, timeout) {
                        Ok(Response::Malformed(_)) | Err(_) => None,
                        Ok(response) => Some(unpack(response)?),
                    }
                };
                let (mut answer, failover) = match primary_answer {
                    Some(Some(answer)) => (answer, false),
                    Some(None) => {
                        return Err(Error::Data(format!("shard {shard}: primary sent no answer")))
                    }
                    None => {
                        let Some(replica) = &self.replica else {
                            return Err(Error::Data(format!(
                                "shard {shard}: primary replica failed mid-query \
                                 ({}) and replication is disabled",
                                if killed { "killed" } else { "deadline expired" }
                            )));
                        };
                        match unpack(replica.lock().call(&message, timeout)?)? {
                            Some(answer) => (answer, true),
                            None => {
                                return Err(Error::Data(format!(
                                    "shard {shard}: replica sent no answer"
                                )))
                            }
                        }
                    }
                };
                let elapsed = started.elapsed();
                for report in &mut answer.reports {
                    report.latency = elapsed;
                    report.failover = failover;
                }
                Ok(answer)
            }
        }
    }
}

/// Split a well-formed response into answer / application error; a bare
/// ack to a query is a protocol violation, and a `Malformed` NAK from a
/// node with no replica to retry is fatal.
fn unpack(response: Response) -> Result<Option<SubtreeAnswer>> {
    match response {
        Response::Answer(answer) => Ok(Some(*answer)),
        Response::Err(message) => Err(Error::Data(message)),
        Response::Malformed(message) => {
            Err(Error::Data(format!("rpc: peer rejected the request frame: {message}")))
        }
        Response::Ok => Ok(None),
    }
}

/// Fan a query out to every child concurrently and fold the answers in
/// fixed child order — the same associative merge the in-process cluster
/// uses, so the tree shape cannot change the result.
pub fn fan_out(children: &[ChildHandle], request: &QueryRequest) -> Result<SubtreeAnswer> {
    let answers: Vec<Result<SubtreeAnswer>> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            children.iter().map(|child| scope.spawn(move || child.query(request))).collect();
        handles.into_iter().map(|h| h.join().expect("child query thread panicked")).collect()
    });
    let mut merged = SubtreeAnswer::empty();
    for answer in answers {
        let answer = answer?;
        merged.partial.merge(answer.partial)?;
        merged.stats += &answer.stats;
        merged.reports.extend(answer.reports);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::DataType;

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Ping,
            Request::Load(Box::new(LoadRequest {
                shard: 3,
                schema: Schema::of(&[("k", DataType::Str)]),
                rows: vec![Row(vec![pd_common::Value::from("x")])],
                build: BuildOptions::production(&["k"]),
                threads: 2,
                cache_budget: 1 << 20,
            })),
            Request::Attach(AttachRequest {
                children: vec![
                    ChildSpec::Leaf {
                        shard: 0,
                        primary: "/tmp/a.sock".into(),
                        replica: Some("/tmp/b.sock".into()),
                    },
                    ChildSpec::Node { addr: "/tmp/m.sock".into(), height: 2 },
                ],
            }),
            Request::Query(QueryRequest {
                sql: "SELECT COUNT(*) FROM t".into(),
                deadline: Duration::from_millis(250),
                killed: vec![1, 3],
            }),
            Request::Delay { micros: 5000 },
            Request::Shutdown,
        ];
        for request in requests {
            let back: Request = wire::from_bytes(&wire::to_bytes(&request)).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let answer = SubtreeAnswer {
            partial: PartialResult::default(),
            stats: ScanStats { rows_total: 9, ..Default::default() },
            reports: vec![ShardReport {
                shard: 1,
                latency: Duration::from_micros(77),
                queue: Duration::from_micros(3),
                failover: true,
            }],
        };
        for response in [
            Response::Ok,
            Response::Answer(Box::new(answer)),
            Response::Err("boom".into()),
            Response::Malformed("bad frame".into()),
        ] {
            let back: Response = wire::from_bytes(&wire::to_bytes(&response)).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn frames_round_trip_over_a_socket_pair() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        write_frame(&mut a, &Request::Ping).unwrap();
        write_frame(&mut a, &Request::Delay { micros: 9 }).unwrap();
        assert_eq!(read_frame::<Request>(&mut b).unwrap(), Some(Request::Ping));
        assert_eq!(read_frame::<Request>(&mut b).unwrap(), Some(Request::Delay { micros: 9 }));
        drop(a);
        assert_eq!(read_frame::<Request>(&mut b).unwrap(), None, "clean EOF");
    }

    #[test]
    fn corrupt_frame_lengths_are_rejected() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.write_all(&u32::MAX.to_le_bytes()).unwrap();
        assert!(read_frame::<Request>(&mut b).is_err());
    }
}
