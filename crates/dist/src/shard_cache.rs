//! Shard-level result caching for the §4 serving tree.
//!
//! §6 observes that drill-down traffic is dominated by *re-asked*
//! subqueries: a mouse click refreshes many charts, and every chart except
//! the one being filtered re-issues a query the tree has answered before.
//! The chunk-result cache (§6, [`pd_core::ResultCache`]) exploits this per
//! fully-active chunk *inside* one shard; this module adds the distributed
//! counterpart: the root of the computation tree remembers each shard's
//! **merged partial result** keyed by a normalized query signature, so a
//! repeated subquery skips the shard entirely — no scan, no merge work, no
//! round trip in a real deployment.
//!
//! Two properties make this safe:
//!
//! - partials are *pre-finalize* states ([`pd_core::PartialResult`]), so
//!   the signature deliberately excludes `HAVING` / `ORDER BY` / `LIMIT` —
//!   drill-down queries differing only in presentation share entries;
//! - every [`pd_core::AggState`] merges associatively (float sums are
//!   exact superaccumulators), so serving a cached partial is bit-identical
//!   to rescanning the shard. Capacity eviction can therefore change
//!   [`pd_core::ScanStats`], never results.
//!
//! Admission/eviction bookkeeping reuses [`pd_core::BoundedCache`] — the
//! same FIFO-bounded machinery as the chunk-result cache.

use pd_core::{BoundedCache, PartialResult, ScanStats};
use pd_sql::{AnalyzedQuery, Expr};
use std::sync::Arc;

/// Normalized cache signature of an analyzed query: everything that
/// affects the *partial* (table, keys, aggregates, row restriction, sketch
/// size) and nothing that only affects finalization.
pub fn query_signature(analyzed: &AnalyzedQuery, sketch_m: usize) -> String {
    format!(
        "{}|keys:{}|aggs:{}|where:{}|m:{}",
        analyzed.table.as_deref().unwrap_or(""),
        analyzed.keys.iter().map(Expr::canonical).collect::<Vec<_>>().join(","),
        analyzed.aggs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(","),
        analyzed.filter.as_ref().map(Expr::canonical).unwrap_or_default(),
        sketch_m,
    )
}

/// One shard's cached contribution to a query.
pub struct ShardEntry {
    /// The shard's mergeable group states.
    pub partial: PartialResult,
    /// Shard shape at computation time, for hit-side stats synthesis.
    rows_total: u64,
    chunks_total: usize,
}

impl ShardEntry {
    pub fn new(partial: PartialResult, stats: &ScanStats) -> ShardEntry {
        ShardEntry { partial, rows_total: stats.rows_total, chunks_total: stats.chunks_total }
    }

    /// The stats a cache hit reports: every row of the shard was served
    /// from a cached result — nothing scanned, nothing read from disk.
    pub fn cached_stats(&self) -> ScanStats {
        ScanStats {
            chunks_total: self.chunks_total,
            chunks_cached: self.chunks_total,
            rows_total: self.rows_total,
            rows_cached: self.rows_total,
            ..Default::default()
        }
    }
}

/// The root-side cache of per-shard partial results.
pub struct ShardCache {
    entries: BoundedCache<(String, usize), Arc<ShardEntry>>,
}

impl ShardCache {
    /// Cache at most `capacity` (signature, shard) partials.
    pub fn new(capacity: usize) -> ShardCache {
        ShardCache { entries: BoundedCache::new(capacity) }
    }

    pub fn get(&self, signature: &str, shard: usize) -> Option<Arc<ShardEntry>> {
        self.entries.get(&(signature.to_owned(), shard))
    }

    pub fn put(&self, signature: &str, shard: usize, entry: Arc<ShardEntry>) {
        self.entries.put((signature.to_owned(), shard), entry);
    }

    /// Invalidate everything — required whenever a shard's store is
    /// rebuilt, since cached partials refer to the old data.
    pub fn invalidate(&self) {
        self.entries.clear();
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        self.entries.stats()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_sql::{analyze, parse_query};

    fn signature(sql: &str) -> String {
        query_signature(&analyze(&parse_query(sql).unwrap()).unwrap(), 4096)
    }

    #[test]
    fn signature_ignores_presentation_clauses() {
        let base = signature("SELECT country, COUNT(*) c FROM logs GROUP BY country");
        assert_eq!(
            base,
            signature(
                "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 5"
            ),
            "ORDER BY / LIMIT do not change the partial"
        );
        assert_eq!(
            base,
            signature("SELECT country, COUNT(*) c FROM logs GROUP BY country HAVING c > 3"),
            "HAVING is applied at finalize time"
        );
    }

    #[test]
    fn signature_distinguishes_restrictions_and_shapes() {
        let base = signature("SELECT country, COUNT(*) c FROM logs GROUP BY country");
        for other in [
            "SELECT country, COUNT(*) c FROM logs WHERE country = 'DE' GROUP BY country",
            "SELECT table_name, COUNT(*) c FROM logs GROUP BY table_name",
            "SELECT country, COUNT(*) c, SUM(timestamp) s FROM logs GROUP BY country",
        ] {
            assert_ne!(base, signature(other), "{other}");
        }
    }

    #[test]
    fn entries_are_per_shard() {
        let cache = ShardCache::new(8);
        let entry = Arc::new(ShardEntry::new(PartialResult::default(), &ScanStats::default()));
        cache.put("sig", 0, entry);
        assert!(cache.get("sig", 0).is_some());
        assert!(cache.get("sig", 1).is_none());
        cache.invalidate();
        assert!(cache.get("sig", 0).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_stats_report_everything_as_cached() {
        let stats = ScanStats {
            chunks_total: 7,
            chunks_scanned: 5,
            chunks_skipped: 2,
            rows_total: 700,
            rows_scanned: 500,
            rows_skipped: 200,
            ..Default::default()
        };
        let entry = ShardEntry::new(PartialResult::default(), &stats);
        let hit = entry.cached_stats();
        assert_eq!(hit.rows_total, 700);
        assert_eq!(hit.rows_cached, 700);
        assert_eq!(hit.rows_scanned, 0);
        assert_eq!(hit.chunks_cached, 7);
        assert_eq!(hit.disk_bytes, 0);
    }
}
