//! Result caching for the §4 serving tree — at *every* node of it.
//!
//! §6 observes that drill-down traffic is dominated by *re-asked*
//! subqueries: a mouse click refreshes many charts, and every chart except
//! the one being filtered re-issues a query the tree has answered before.
//! The chunk-result cache (§6, [`pd_core::ResultCache`]) exploits this per
//! fully-active chunk *inside* one shard; this module adds the distributed
//! counterparts, both keyed by the same normalized [`query_signature`]:
//!
//! - [`ShardCache`] — the driver root's per-shard cache of partial
//!   results, used by the in-process transport where the root sees every
//!   shard's partial directly;
//! - [`WorkerCache`] — one node's own cache inside a `pd-dist-worker`
//!   process: a leaf caches the shard's [`pd_core::PartialResult`], a
//!   merge server caches the *folded subtree* partial. A warm drill-down
//!   over RPC therefore answers from the topmost cache that has the
//!   signature, with **zero child hops** below it. Invalidation is the
//!   rebuild epoch carried by every `Load`/`Attach`/`Query`
//!   ([`crate::rpc`]): a node drops its cache the moment it sees the
//!   epoch advance.
//!
//! Two properties make both caches safe:
//!
//! - partials are *pre-finalize* states ([`pd_core::PartialResult`]), so
//!   the signature deliberately excludes `HAVING` / `ORDER BY` / `LIMIT` —
//!   drill-down queries differing only in presentation share entries;
//! - every [`pd_core::AggState`] merges associatively (float sums are
//!   exact superaccumulators), so serving a cached partial is bit-identical
//!   to rescanning the shard (or re-folding the subtree). Capacity
//!   eviction can therefore change [`pd_core::ScanStats`], never results.
//!
//! Admission/eviction bookkeeping reuses [`pd_core::BoundedCache`] — the
//! same cost-aware bounded machinery as the chunk-result cache. Callers
//! that observed how long the partial took to compute use the `put_costed`
//! variants, scoring entries by `bytes × recompute ns`
//! ([`pd_core::cost_score`]) so a full cache keeps the partials that are
//! most expensive to regenerate.

use crate::rpc::{ShardReport, SubtreeAnswer};
use pd_core::{cost_score, BoundedCache, PartialResult, ScanStats};
use pd_sql::{AnalyzedQuery, Expr};
use std::sync::Arc;
use std::time::Duration;

/// Normalized cache signature of an analyzed query: everything that
/// affects the *partial* (table, keys, aggregates, row restriction, sketch
/// size) and nothing that only affects finalization.
pub fn query_signature(analyzed: &AnalyzedQuery, sketch_m: usize) -> String {
    format!(
        "{}|keys:{}|aggs:{}|where:{}|m:{}",
        analyzed.table.as_deref().unwrap_or(""),
        analyzed.keys.iter().map(Expr::canonical).collect::<Vec<_>>().join(","),
        analyzed.aggs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(","),
        analyzed.filter.as_ref().map(Expr::canonical).unwrap_or_default(),
        sketch_m,
    )
}

/// One shard's cached contribution to a query.
pub struct ShardEntry {
    /// The shard's mergeable group states.
    pub partial: PartialResult,
    /// Shard shape at computation time, for hit-side stats synthesis.
    rows_total: u64,
    chunks_total: usize,
}

impl ShardEntry {
    pub fn new(partial: PartialResult, stats: &ScanStats) -> ShardEntry {
        ShardEntry { partial, rows_total: stats.rows_total, chunks_total: stats.chunks_total }
    }

    /// The stats a cache hit reports: every row of the shard was served
    /// from a cached result — nothing scanned, nothing read from disk.
    pub fn cached_stats(&self) -> ScanStats {
        ScanStats {
            chunks_total: self.chunks_total,
            chunks_cached: self.chunks_total,
            rows_total: self.rows_total,
            rows_cached: self.rows_total,
            ..Default::default()
        }
    }
}

/// The root-side cache of per-shard partial results.
pub struct ShardCache {
    entries: BoundedCache<(String, usize), Arc<ShardEntry>>,
}

impl ShardCache {
    /// Cache at most `capacity` (signature, shard) partials.
    pub fn new(capacity: usize) -> ShardCache {
        ShardCache { entries: BoundedCache::new(capacity) }
    }

    pub fn get(&self, signature: &str, shard: usize) -> Option<Arc<ShardEntry>> {
        self.entries.get(&(signature.to_owned(), shard))
    }

    pub fn put(&self, signature: &str, shard: usize, entry: Arc<ShardEntry>) {
        self.entries.put((signature.to_owned(), shard), entry);
    }

    /// [`put`](ShardCache::put) with an observed recompute cost: the entry
    /// is scored by `partial bytes × recompute ns`, so when the cache is
    /// full the cheapest-to-regenerate partial is the one displaced (or the
    /// incoming one rejected).
    pub fn put_costed(
        &self,
        signature: &str,
        shard: usize,
        entry: Arc<ShardEntry>,
        recompute: Duration,
    ) {
        let cost = cost_score(entry.partial.approx_bytes(), recompute);
        self.entries.put_costed((signature.to_owned(), shard), entry, cost);
    }

    /// Invalidate everything — required whenever a shard's store is
    /// rebuilt, since cached partials refer to the old data.
    pub fn invalidate(&self) {
        self.entries.clear();
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        self.entries.stats()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One tree node's cached answer for a signature: the partial it would
/// recompute, plus the subtree shape needed to synthesize hit-side stats
/// and per-shard reports without touching any child.
pub struct CachedSubtree {
    /// The node's mergeable group states — a leaf's shard partial or a
    /// merge server's folded subtree partial.
    pub partial: PartialResult,
    /// Subtree shape at computation time.
    rows_total: u64,
    chunks_total: usize,
    /// Every shard beneath this node, for hit-side report synthesis.
    shards: Vec<u64>,
}

impl CachedSubtree {
    /// Capture a freshly computed answer for reuse.
    pub fn capture(answer: &SubtreeAnswer) -> CachedSubtree {
        CachedSubtree {
            partial: answer.partial.clone(),
            rows_total: answer.stats.rows_total,
            chunks_total: answer.stats.chunks_total,
            shards: answer.reports.iter().map(|r| r.shard).collect(),
        }
    }

    /// The answer a cache hit sends up the tree: the identical partial,
    /// stats that account every row beneath this node as served from a
    /// cached result (one `worker_cache_hits` for the node that stopped
    /// the query), and a zero-latency, cache-flagged report per shard.
    /// `queued` is this node's own measured queue delay, which applies to
    /// hits exactly as it does to computed answers.
    pub fn to_answer(&self, queued: Duration) -> SubtreeAnswer {
        SubtreeAnswer {
            partial: self.partial.clone(),
            stats: ScanStats {
                chunks_total: self.chunks_total,
                chunks_cached: self.chunks_total,
                rows_total: self.rows_total,
                rows_cached: self.rows_total,
                worker_cache_hits: 1,
                ..Default::default()
            },
            reports: self
                .shards
                .iter()
                .map(|&shard| ShardReport {
                    shard,
                    latency: Duration::ZERO,
                    queue: queued,
                    failover: false,
                    hedged: false,
                    cache_hit: true,
                })
                .collect(),
        }
    }
}

/// A worker-process node's own result cache (leaf or merge server), keyed
/// by [`query_signature`] alone — the node *is* its subtree, so no shard
/// index is needed.
pub struct WorkerCache {
    entries: BoundedCache<String, Arc<CachedSubtree>>,
}

impl WorkerCache {
    /// Cache at most `capacity` signatures.
    pub fn new(capacity: usize) -> WorkerCache {
        WorkerCache { entries: BoundedCache::new(capacity) }
    }

    pub fn get(&self, signature: &str) -> Option<Arc<CachedSubtree>> {
        self.entries.get_borrowed(signature)
    }

    pub fn put(&self, signature: &str, entry: Arc<CachedSubtree>) {
        self.entries.put(signature.to_owned(), entry);
    }

    /// [`put`](WorkerCache::put) with an observed recompute cost
    /// (`partial bytes × recompute ns`), so capacity pressure evicts the
    /// subtree answers that are cheapest to regenerate.
    pub fn put_costed(&self, signature: &str, entry: Arc<CachedSubtree>, recompute: Duration) {
        let cost = cost_score(entry.partial.approx_bytes(), recompute);
        self.entries.put_costed(signature.to_owned(), entry, cost);
    }

    /// Drop everything — the epoch-advance reaction: cached partials
    /// refer to the previous build of the data.
    pub fn invalidate(&self) {
        self.entries.clear();
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        self.entries.stats()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_sql::{analyze, parse_query};

    fn signature(sql: &str) -> String {
        query_signature(&analyze(&parse_query(sql).unwrap()).unwrap(), 4096)
    }

    #[test]
    fn signature_format_is_pinned() {
        // This exact string is the cache key shipped between processes —
        // `crates/sql/tests/signature_stability.rs` pins the fragments, this
        // pins the assembly. Changing it cold-starts every worker cache.
        assert_eq!(
            signature(
                "SELECT country, COUNT(*) c, SUM(latency) s FROM logs \
                 WHERE latency > 100 GROUP BY country"
            ),
            "logs|keys:country|aggs:COUNT(*),SUM(latency)|where:(latency > 100)|m:4096"
        );
        assert_eq!(
            signature("SELECT COUNT(*) FROM logs"),
            "logs|keys:|aggs:COUNT(*)|where:|m:4096"
        );
    }

    #[test]
    fn signature_ignores_presentation_clauses() {
        let base = signature("SELECT country, COUNT(*) c FROM logs GROUP BY country");
        assert_eq!(
            base,
            signature(
                "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 5"
            ),
            "ORDER BY / LIMIT do not change the partial"
        );
        assert_eq!(
            base,
            signature("SELECT country, COUNT(*) c FROM logs GROUP BY country HAVING c > 3"),
            "HAVING is applied at finalize time"
        );
    }

    #[test]
    fn signature_distinguishes_restrictions_and_shapes() {
        let base = signature("SELECT country, COUNT(*) c FROM logs GROUP BY country");
        for other in [
            "SELECT country, COUNT(*) c FROM logs WHERE country = 'DE' GROUP BY country",
            "SELECT table_name, COUNT(*) c FROM logs GROUP BY table_name",
            "SELECT country, COUNT(*) c, SUM(timestamp) s FROM logs GROUP BY country",
        ] {
            assert_ne!(base, signature(other), "{other}");
        }
    }

    #[test]
    fn entries_are_per_shard() {
        let cache = ShardCache::new(8);
        let entry = Arc::new(ShardEntry::new(PartialResult::default(), &ScanStats::default()));
        cache.put("sig", 0, entry);
        assert!(cache.get("sig", 0).is_some());
        assert!(cache.get("sig", 1).is_none());
        cache.invalidate();
        assert!(cache.get("sig", 0).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_stats_report_everything_as_cached() {
        let stats = ScanStats {
            chunks_total: 7,
            chunks_scanned: 5,
            chunks_skipped: 2,
            rows_total: 700,
            rows_scanned: 500,
            rows_skipped: 200,
            ..Default::default()
        };
        let entry = ShardEntry::new(PartialResult::default(), &stats);
        let hit = entry.cached_stats();
        assert_eq!(hit.rows_total, 700);
        assert_eq!(hit.rows_cached, 700);
        assert_eq!(hit.rows_scanned, 0);
        assert_eq!(hit.chunks_cached, 7);
        assert_eq!(hit.disk_bytes, 0);
    }

    #[test]
    fn cached_subtrees_synthesize_all_cached_answers() {
        let computed = SubtreeAnswer {
            partial: PartialResult::default(),
            stats: ScanStats {
                chunks_total: 6,
                chunks_scanned: 4,
                chunks_skipped: 2,
                rows_total: 600,
                rows_scanned: 400,
                rows_skipped: 200,
                ..Default::default()
            },
            reports: vec![
                ShardReport {
                    shard: 2,
                    latency: Duration::from_micros(50),
                    queue: Duration::from_micros(9),
                    failover: true,
                    hedged: true,
                    cache_hit: false,
                },
                ShardReport {
                    shard: 5,
                    latency: Duration::from_micros(70),
                    queue: Duration::ZERO,
                    failover: false,
                    hedged: false,
                    cache_hit: false,
                },
            ],
        };
        let cached = CachedSubtree::capture(&computed);
        let hit = cached.to_answer(Duration::from_micros(123));
        assert_eq!(hit.partial, computed.partial);
        assert_eq!(hit.stats.rows_total, 600);
        assert_eq!(hit.stats.rows_cached, 600);
        assert_eq!(hit.stats.rows_scanned, 0);
        assert_eq!(hit.stats.chunks_cached, 6);
        assert_eq!(hit.stats.worker_cache_hits, 1, "one node stopped the query");
        let shards: Vec<u64> = hit.reports.iter().map(|r| r.shard).collect();
        assert_eq!(shards, vec![2, 5], "every shard beneath still reports");
        for report in &hit.reports {
            assert!(report.cache_hit);
            assert!(!report.failover, "a hit never touches any replica");
            assert_eq!(report.queue, Duration::from_micros(123));
        }
    }

    #[test]
    fn worker_cache_is_signature_keyed_and_invalidates() {
        let cache = WorkerCache::new(8);
        let answer = SubtreeAnswer {
            partial: PartialResult::default(),
            stats: ScanStats::default(),
            reports: Vec::new(),
        };
        cache.put("sig-a", Arc::new(CachedSubtree::capture(&answer)));
        assert!(cache.get("sig-a").is_some());
        assert!(cache.get("sig-b").is_none());
        assert_eq!(cache.stats(), (1, 1));
        cache.invalidate();
        assert!(cache.get("sig-a").is_none());
        assert!(cache.is_empty());
    }
}
