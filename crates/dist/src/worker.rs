//! The worker process: one node of the §4 computation tree.
//!
//! `pd-dist-worker --listen <unix:path | tcp:host:port>` binds a socket in
//! either shape and serves the [`crate::rpc`] protocol. With
//! `--listen tcp:host:0` the OS picks the port; `--announce <file>` makes
//! the worker write its resolved address there (atomically, via rename) so
//! the spawner can find it. What kind of node the worker becomes is
//! decided by the driver after startup:
//!
//! - a [`Request::Load`] turns it into a **leaf server**: it imports the
//!   shipped rows with the shipped [`pd_core::BuildOptions`] (building
//!   exactly the store the in-process cluster would), summarizes the shard
//!   into a [`crate::meta::ShardMeta`] (answered as [`Response::Loaded`],
//!   so parents can pre-skip it later), and answers queries by executing
//!   the shipped [`pd_sql::AnalyzedQuery`] — no SQL parsing on any hop;
//! - a [`Request::Attach`] turns it into a **merge server** ("mixer"): it
//!   owns a subtree of children, fans queries out to them, folds their
//!   partials with the same associative merge the root uses, applies the
//!   replica-failover rule to its leaf children, and **prunes children
//!   whose shard metadata cannot match the query's restriction** before
//!   spending any network hop;
//! - a [`Request::Append`] streams new rows into an existing **leaf**
//!   in place: the worker applies the dictionary-delta table to its
//!   resident store (existing codes stay stable, new codes append),
//!   re-derives the shard summary for the new chunks only, drops every
//!   resident cache layer, adopts the shipped epoch, and acks with the
//!   refreshed [`crate::meta::ShardMeta`] — no respawn, no re-import.
//!
//! Either role owns a [`crate::shard_cache::WorkerCache`] (capacity
//! shipped in `Load`/`Attach`): repeated queries with the same normalized
//! signature answer from the node's cached partial — a leaf skips its
//! scan, a merge server skips its *entire subtree fan-out* — with the hit
//! recorded in [`pd_core::ScanStats::worker_cache_hits`] and every shard
//! report flagged `cache_hit`. Invalidation is the **rebuild epoch**: the
//! driver bumps it on [`crate::Cluster::rebuild`], every `Load`/`Attach`/
//! `Query` carries it, and a node that sees the epoch move drops its
//! cache before doing anything else.
//!
//! **Compression mirror.** The worker has no compression config of its
//! own: it compresses a response exactly when the request frame advertised
//! `FRAME_FLAG_COMPRESS_OK`, and (as a merge server) compresses frames to
//! its children when the `Attach` said to — the per-connection negotiation
//! travels down the tree with the wiring.
//!
//! **Measured queue delays.** Connections are accepted and read on their
//! own threads, but all requests funnel through a single executor thread.
//! The time a request spends between arrival and execution is this
//! process's *real* queue delay — measured with a monotonic clock inside
//! one process, no cross-process clock games — and it rides up the tree in
//! every [`ShardReport`]: a merge server adds its own queueing to each of
//! its shards' reports. That observation stream is what replaces the
//! seeded [`crate::LoadModel`] draws when the cluster runs over RPC. The
//! `Delay` test knob deliberately lives *outside* this pipeline: the
//! artificial sleep happens on the delayed query's own connection thread,
//! after execution and before the reply — it is service time of that
//! query alone (the caller still sees a worker that blows its deadline),
//! and it never inflates the measured queue delay of unrelated requests
//! behind it.

use crate::chaos::ChaosFault;
use crate::meta::{self, ShardMeta};
use crate::rpc::{
    encode_frame, fan_out, read_frame_negotiated, write_frame, Addr, ChildHandle, Listener,
    LoadRequest, QueryRequest, Request, Response, ShardReport, Stream, SubtreeAnswer,
};
use crate::shard_cache::{query_signature, CachedSubtree, WorkerCache};
use pd_common::{Error, Result, RpcError, Value};
use pd_core::{
    execute_partial_seeded, CachePolicy, DataStore, ExecContext, ResultCache, TieredCache,
};
use pd_data::Table;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Entry point for the `pd-dist-worker` binary: parse the listen address,
/// serve forever (until a `Shutdown` request or a fatal error). Returns
/// the process exit code.
pub fn worker_main() -> i32 {
    let mut args = std::env::args().skip(1);
    let mut listen = None;
    let mut announce = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `--socket <path>` is the legacy unix-only spelling.
            "--socket" => listen = args.next().map(|p| format!("unix:{p}")),
            "--listen" => listen = args.next(),
            "--announce" => announce = args.next(),
            other => {
                eprintln!("pd-dist-worker: unknown argument `{other}`");
                return 2;
            }
        }
    }
    let Some(listen) = listen else {
        eprintln!("usage: pd-dist-worker --listen <unix:path|tcp:host:port> [--announce <file>]");
        return 2;
    };
    let addr = match Addr::parse(&listen) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("pd-dist-worker: {e}");
            return 2;
        }
    };
    match serve(&addr, announce.as_deref().map(Path::new)) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("pd-dist-worker: {e}");
            1
        }
    }
}

/// A leaf's executable state.
struct LeafStore {
    shard: u64,
    store: DataStore,
    ctx: ExecContext,
    /// The shard's own metadata (the same object the `Loaded` ack ships):
    /// queries with chunk pruning enabled seed their scan with the
    /// per-chunk verdicts instead of re-deriving them per query plan.
    meta: ShardMeta,
}

/// What this worker currently is. `Load` and `Attach` are role
/// assignments from the driver; each one *replaces* the previous role
/// outright — a repurposed worker must never answer from a shadowed
/// store or a stale child list.
#[derive(Default)]
struct Role {
    leaf: Option<LeafStore>,
    children: Option<Vec<ChildHandle>>,
    /// This node's own result cache (`None` = disabled by the driver).
    cache: Option<WorkerCache>,
    /// Rebuild epoch of the data this node serves; a query from a
    /// different epoch drops the cache (its partials describe old data).
    epoch: u64,
    /// This node's tree-wide name (`l0p`, `m1_0`, ...), assigned with the
    /// role — the key chaos directives are matched against.
    name: String,
    /// Test knob: artificial delay before query answers reach the wire.
    delay: Duration,
}

impl Role {
    /// Install a fresh role's cache + epoch (shared by `Load`/`Attach`).
    fn reset_cache(&mut self, cache_entries: u64, epoch: u64) {
        self.cache = (cache_entries > 0).then(|| WorkerCache::new(cache_entries as usize));
        self.epoch = epoch;
    }
}

/// How a response should reach the wire: after `lag` sleep (the `Delay`
/// knob plus any chaos delay), and — under chaos — sabotaged instead of
/// sent whole.
#[derive(Default)]
struct ReplyMode {
    lag: Duration,
    fault: Option<WireFault>,
}

/// Chaos sabotage applied by the *connection* thread, after execution:
/// the executor stays correct, only this query's bytes are wrecked.
enum WireFault {
    /// Close the connection without replying.
    Reset,
    /// Write half the reply frame, then close.
    Torn,
}

struct Work {
    request: Request,
    reply: mpsc::Sender<(Response, ReplyMode)>,
    enqueued: Instant,
}

/// The temp file an announce is staged in before its atomic rename. The
/// name keeps the *full* announce file name (two workers announcing to
/// `w.1` and `w.2` must not both stage in `w.tmp`, as `with_extension`
/// would have it) and appends the pid (two processes told to announce to
/// the *same* file must not stage in the same temp file either).
fn announce_tmp(announce: &Path) -> PathBuf {
    let name = announce.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    announce.with_file_name(format!("{name}.tmp.{}", std::process::id()))
}

/// Bind `addr` and serve the protocol, announcing the resolved address
/// (TCP: with the kernel-assigned port) to `announce` if given.
pub fn serve(addr: &Addr, announce: Option<&Path>) -> Result<()> {
    let listener = Listener::bind(addr)?;
    let local = listener.local_addr()?;
    if let Some(announce) = announce {
        // Atomic announce: spawners poll for the file, so it must never be
        // observable half-written.
        let tmp = announce_tmp(announce);
        std::fs::write(&tmp, local.to_string())?;
        std::fs::rename(&tmp, announce)?;
    }
    let (queue, requests) = mpsc::channel::<Work>();

    // The single executor owns the role outright: requests run strictly in
    // arrival order (the gap between enqueue and dequeue is this process's
    // queue delay), and nothing else ever touches the state — connection
    // threads only feed the queue. The artificial `Delay` is handed back
    // with the response and slept off on the connection thread: it is
    // service time of that query only, never executor time that would
    // inflate the measured queue delay of whatever sits behind it.
    std::thread::Builder::new()
        .name("pd-worker-exec".into())
        .spawn(move || {
            let mut role = Role::default();
            for work in requests {
                let queued = work.enqueued.elapsed();
                let is_query = matches!(work.request, Request::Query(_));
                let mut mode = ReplyMode::default();
                let response = handle(&mut role, work.request, queued, &mut mode).unwrap_or_else(
                    |e| match e {
                        // Typed robustness failures cross the wire as
                        // `Fault` so the parent's policy can dispatch on
                        // the variant; anything else is an app error.
                        Error::Rpc(fault) => Response::Fault(fault),
                        e => Response::Err(e.to_string()),
                    },
                );
                if is_query {
                    mode.lag += role.delay;
                }
                let _ = work.reply.send((response, mode));
            }
        })
        .map_err(|e| Error::Data(format!("spawn executor: {e}")))?;

    loop {
        let stream = listener.accept().map_err(|e| Error::Data(format!("accept: {e}")))?;
        let queue = queue.clone();
        std::thread::Builder::new()
            .name("pd-worker-conn".into())
            .spawn(move || connection_loop(stream, queue))
            .map_err(|e| Error::Data(format!("spawn connection: {e}")))?;
    }
}

/// Read frames off one connection until EOF, routing requests through the
/// executor queue. `Ping` answers inline (the startup handshake must not
/// wait behind a long import); `Shutdown` acks and exits the process.
/// Responses are compressed exactly when the request frame advertised
/// that compressed replies are welcome.
fn connection_loop(mut stream: Stream, queue: mpsc::Sender<Work>) {
    loop {
        let (request, compress_reply) = match read_frame_negotiated::<Request>(&mut stream) {
            Ok(Some(negotiated)) => negotiated,
            Ok(None) => return, // peer closed
            Err(e) => {
                // Corrupt frame: NAK and drop the connection — framing is
                // unrecoverable once desynchronized, and the `Malformed`
                // tag tells a leaf's parent to fail over (fresh bytes to
                // the replica) rather than abort the query.
                let _ = write_frame(&mut stream, &Response::Malformed(e.to_string()), false);
                return;
            }
        };
        match request {
            Request::Ping => {
                if write_frame(&mut stream, &Response::Ok, compress_reply).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = write_frame(&mut stream, &Response::Ok, compress_reply);
                std::process::exit(0);
            }
            request => {
                let (reply, response) = mpsc::channel();
                if queue.send(Work { request, reply, enqueued: Instant::now() }).is_err() {
                    return; // executor gone; process is doomed anyway
                }
                let Ok((response, mode)) = response.recv() else { return };
                if !mode.lag.is_zero() {
                    // The Delay test knob (plus chaos delays): this
                    // query's answer is late from the caller's point of
                    // view (the budget-expiry suite's "slow worker"), but
                    // the executor is already free — the sleep is this
                    // connection's alone.
                    std::thread::sleep(mode.lag);
                }
                match mode.fault {
                    // Chaos reset: vanish without a reply — the parent
                    // sees the connection die mid-conversation.
                    Some(WireFault::Reset) => return,
                    // Chaos torn frame: half the real reply, then gone —
                    // the parent's decode sees truncated bytes.
                    Some(WireFault::Torn) => {
                        if let Ok(frame) = encode_frame(&response, compress_reply) {
                            let _ = stream.write_all(&frame[..frame.len() / 2]);
                            let _ = stream.flush();
                        }
                        return;
                    }
                    None => {}
                }
                if write_frame(&mut stream, &response, compress_reply).is_err() {
                    // Peer gave up (budget expiry or a hedge loss): drop
                    // the connection; the answer is stale by definition.
                    return;
                }
            }
        }
    }
}

fn handle(
    role: &mut Role,
    request: Request,
    queued: Duration,
    mode: &mut ReplyMode,
) -> Result<Response> {
    match request {
        Request::Load(load) => {
            let (cache_entries, epoch) = (load.cache_entries, load.epoch);
            role.name = load.name.clone();
            let (leaf, meta) = build_leaf(*load)?;
            role.leaf = Some(leaf);
            // A role assignment is total: a worker repurposed from merge
            // server to leaf must not keep (and silently prefer or leak)
            // its old child wiring, and any cached partials describe the
            // previous role's data.
            role.children = None;
            role.reset_cache(cache_entries, epoch);
            Ok(Response::Loaded(Box::new(meta)))
        }
        Request::Attach(attach) => {
            let compress = attach.compress;
            role.name = attach.name;
            role.children =
                Some(attach.children.into_iter().map(|c| ChildHandle::new(c, compress)).collect());
            // Same totality the other way: the old leaf store would shadow
            // the freshly attached subtree.
            role.leaf = None;
            role.reset_cache(attach.cache_entries, attach.epoch);
            Ok(Response::Ok)
        }
        Request::Append(append) => {
            let Some(leaf) = role.leaf.as_mut() else {
                return Err(Error::Data("Append sent to a worker that is not a leaf".into()));
            };
            if append.shard != leaf.shard {
                return Err(Error::Data(format!(
                    "Append for shard {} sent to leaf {}",
                    append.shard, leaf.shard
                )));
            }
            let old_chunks = leaf.store.chunk_count();
            leaf.store.append_delta(&append.delta)?;
            // Re-derive the shard summary in place: the new chunks' zone
            // maps and the column blooms absorb exactly the delta rows, so
            // parent-side pruning stays sound without a re-summarize scan
            // of the resident data.
            let columns = append.delta.materialized_columns();
            let slices: Vec<&[Value]> = columns.iter().map(|c| c.as_slice()).collect();
            let part = leaf.store.partitioning();
            let new_chunk_rows: Vec<usize> =
                (old_chunks..part.chunk_count()).map(|c| part.chunk_range(c).len()).collect();
            let schema = leaf.store.schema().clone();
            leaf.meta.absorb_delta(&schema, &slices, &new_chunk_rows);
            // Every resident cache layer describes the pre-append data:
            // drop chunk results and tiered entries, invalidate the
            // subtree cache, and adopt the new epoch so queries carrying
            // it are served fresh.
            if let Some(results) = &leaf.ctx.result_cache {
                results.clear();
            }
            if let Some(tiered) = &leaf.ctx.tiered {
                tiered.clear();
            }
            let meta = leaf.meta.clone();
            if let Some(cache) = &role.cache {
                cache.invalidate();
            }
            role.epoch = append.epoch;
            Ok(Response::Loaded(Box::new(meta)))
        }
        Request::Delay { micros } => {
            role.delay = Duration::from_micros(micros);
            Ok(Response::Ok)
        }
        Request::Query(mut query) => {
            // Chaos first: injected faults must hit cache hits and budget
            // expiries too — the sabotage is the wire's, not the plan's.
            for directive in &query.chaos {
                if directive.node == role.name {
                    match directive.fault {
                        // A mid-query crash: no reply byte ever leaves.
                        ChaosFault::Kill => std::process::exit(9),
                        ChaosFault::Delay(d) => mode.lag += d,
                        ChaosFault::Reset => mode.fault = Some(WireFault::Reset),
                        ChaosFault::Torn => mode.fault = Some(WireFault::Torn),
                    }
                }
            }
            // Decrement the budget by the time this request sat in our
            // queue. Spent budgets fail typed and *immediately* — children
            // are never asked to run a query nobody is waiting for.
            let budget = query.budget.saturating_sub(queued);
            if budget.is_zero() {
                return Err(Error::Rpc(RpcError::Deadline(format!(
                    "{}: budget spent after {queued:?} queued",
                    role.name
                ))));
            }
            query.budget = budget;
            if query.epoch != role.epoch {
                // The driver rebuilt the data since this node's cache was
                // filled: every cached partial is stale. (Freshly respawned
                // trees get the new epoch at Load/Attach, so this path is
                // the guarantee for any node that survives a rebuild.)
                if let Some(cache) = &role.cache {
                    cache.invalidate();
                }
                role.epoch = query.epoch;
            }
            let signature = role.cache.as_ref().map(|_| {
                let sketch_m = role.leaf.as_ref().map_or(0, |leaf| leaf.ctx.sketch_m());
                query_signature(&query.query, sketch_m)
            });
            if let (Some(cache), Some(signature)) = (&role.cache, &signature) {
                if let Some(entry) = cache.get(signature) {
                    // The nearest-cache answer: identical partial, zero
                    // child hops, every row beneath accounted as cached.
                    return Ok(Response::Answer(Box::new(entry.to_answer(queued))));
                }
            }
            let started = std::time::Instant::now();
            let answer = if let Some(leaf) = &role.leaf {
                execute_leaf(leaf, &query, queued)?
            } else if let Some(children) = &role.children {
                let mut answer = fan_out(children, &query)?;
                for report in &mut answer.reports {
                    // This merge server's own queueing delays every shard
                    // beneath it.
                    report.queue += queued;
                }
                answer
            } else {
                return Err(Error::Data(
                    "worker has neither a store (Load) nor children (Attach)".into(),
                ));
            };
            if let (Some(cache), Some(signature)) = (&role.cache, &signature) {
                // Admission is cost-aware: what this node just spent
                // computing the subtree answer (scan or fan-out + fold) is
                // exactly what a future miss would spend again.
                cache.put_costed(
                    signature,
                    Arc::new(CachedSubtree::capture(&answer)),
                    started.elapsed(),
                );
            }
            Ok(Response::Answer(Box::new(answer)))
        }
        Request::Ping => Ok(Response::Ok),
        Request::Shutdown => Ok(Response::Ok), // handled inline; unreachable via queue
    }
}

/// Import the shipped shard and summarize it. The store and context mirror
/// what `Cluster::build_shards` constructs in-process, so the process
/// split changes *where* the shard lives, not what it computes. The
/// returned [`ShardMeta`] is the worker's own account of its data — value
/// sets and extremes from the exact rows it serves, chunk count from the
/// store it built — which is what makes parent-side pruning sound.
fn build_leaf(load: LoadRequest) -> Result<(LeafStore, ShardMeta)> {
    let mut meta = ShardMeta::summarize(load.shard, &load.schema, &load.rows);
    let mut table = Table::new(load.schema);
    for row in load.rows {
        table.push_row(row)?;
    }
    let store = DataStore::build(&table, &load.build)?;
    meta.chunks = store.chunk_count() as u64;
    // The chunk-granular layers come from the *built* store: its
    // partitioning says which imported rows each chunk scan would visit,
    // so the per-chunk zone maps (and the blooms for degraded columns)
    // describe exactly the data every query-time verdict must hold for.
    let columns: Vec<&[Value]> =
        (0..table.schema().fields().len()).map(|i| table.column(i)).collect();
    meta.summarize_chunks(table.schema(), &columns, store.partitioning());
    meta.build_blooms(table.schema(), &columns);
    let ctx = ExecContext {
        sketch_m: 0,
        threads: load.threads as usize,
        result_cache: Some(Arc::new(ResultCache::new(1 << 14))),
        tiered: Some(Arc::new(TieredCache::new(
            CachePolicy::Arc,
            load.cache_budget as usize,
            load.cache_budget as usize / 2,
        ))),
        kernels: Default::default(),
    };
    Ok((LeafStore { shard: load.shard, store, ctx, meta: meta.clone() }, meta))
}

fn execute_leaf(leaf: &LeafStore, query: &QueryRequest, queued: Duration) -> Result<SubtreeAnswer> {
    let started = Instant::now();
    // Seed the scan with the metadata verdicts the parent already pruned
    // by: chunks the zone maps prove dead are skipped without consulting
    // the dictionaries, and the sound-verdict lattice composes the rest
    // with the local analysis (`seed.and(local)` — never less precise).
    let seeds = (query.chunk_pruning && !leaf.meta.chunk_metas.is_empty())
        .then(|| meta::chunk_verdicts(&query.query.restriction, &leaf.meta));
    let (partial, stats) =
        execute_partial_seeded(&leaf.store, &query.query, &leaf.ctx, seeds.as_deref())?;
    Ok(SubtreeAnswer {
        partial,
        stats,
        reports: vec![ShardReport {
            shard: leaf.shard,
            // The parent overwrites latency with its own wall-clock
            // observation; the compute time is the fallback.
            latency: started.elapsed(),
            queue: queued,
            failover: false,
            hedged: false,
            cache_hit: false,
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_tmp_paths_never_collide() {
        // The regression: `with_extension("tmp")` maps both `w.1` and
        // `w.2` to `w.tmp`, so two workers announcing side by side clobber
        // each other's staging file.
        let a = announce_tmp(Path::new("/tmp/tree/w.1"));
        let b = announce_tmp(Path::new("/tmp/tree/w.2"));
        assert_ne!(a, b, "announce files differing only by extension must stage separately");
        assert_eq!(a.parent(), Some(Path::new("/tmp/tree")), "staging stays in the same dir");
        let name = a.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("w.1.tmp."), "full original name is kept: {name}");
        assert!(
            name.ends_with(&std::process::id().to_string()),
            "pid-unique across processes: {name}"
        );
    }
}
