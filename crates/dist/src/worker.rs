//! The worker process: one node of the §4 computation tree.
//!
//! `pd-dist-worker --listen <unix:path | tcp:host:port>` binds a socket in
//! either shape and serves the [`crate::rpc`] protocol. With
//! `--listen tcp:host:0` the OS picks the port; `--announce <file>` makes
//! the worker write its resolved address there (atomically, via rename) so
//! the spawner can find it. What kind of node the worker becomes is
//! decided by the driver after startup:
//!
//! - a [`Request::Load`] turns it into a **leaf server**: it imports the
//!   shipped rows with the shipped [`pd_core::BuildOptions`] (building
//!   exactly the store the in-process cluster would), summarizes the shard
//!   into a [`crate::meta::ShardMeta`] (answered as [`Response::Loaded`],
//!   so parents can pre-skip it later), and answers queries by executing
//!   the shipped [`pd_sql::AnalyzedQuery`] — no SQL parsing on any hop;
//! - a [`Request::Attach`] turns it into a **merge server** ("mixer"): it
//!   owns a subtree of children, fans queries out to them, folds their
//!   partials with the same associative merge the root uses, applies the
//!   replica-failover rule to its leaf children, and **prunes children
//!   whose shard metadata cannot match the query's restriction** before
//!   spending any network hop.
//!
//! **Compression mirror.** The worker has no compression config of its
//! own: it compresses a response exactly when the request frame advertised
//! `FRAME_FLAG_COMPRESS_OK`, and (as a merge server) compresses frames to
//! its children when the `Attach` said to — the per-connection negotiation
//! travels down the tree with the wiring.
//!
//! **Measured queue delays.** Connections are accepted and read on their
//! own threads, but all requests funnel through a single executor thread.
//! The time a request spends between arrival and execution is this
//! process's *real* queue delay — measured with a monotonic clock inside
//! one process, no cross-process clock games — and it rides up the tree in
//! every [`ShardReport`]: a merge server adds its own queueing to each of
//! its shards' reports. That observation stream is what replaces the
//! seeded [`crate::LoadModel`] draws when the cluster runs over RPC.

use crate::meta::ShardMeta;
use crate::rpc::{
    fan_out, read_frame_negotiated, write_frame, Addr, ChildHandle, Listener, LoadRequest,
    QueryRequest, Request, Response, ShardReport, Stream, SubtreeAnswer,
};
use pd_common::{Error, Result};
use pd_core::{execute_partial, CachePolicy, DataStore, ExecContext, ResultCache, TieredCache};
use pd_data::Table;
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Entry point for the `pd-dist-worker` binary: parse the listen address,
/// serve forever (until a `Shutdown` request or a fatal error). Returns
/// the process exit code.
pub fn worker_main() -> i32 {
    let mut args = std::env::args().skip(1);
    let mut listen = None;
    let mut announce = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `--socket <path>` is the legacy unix-only spelling.
            "--socket" => listen = args.next().map(|p| format!("unix:{p}")),
            "--listen" => listen = args.next(),
            "--announce" => announce = args.next(),
            other => {
                eprintln!("pd-dist-worker: unknown argument `{other}`");
                return 2;
            }
        }
    }
    let Some(listen) = listen else {
        eprintln!("usage: pd-dist-worker --listen <unix:path|tcp:host:port> [--announce <file>]");
        return 2;
    };
    let addr = match Addr::parse(&listen) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("pd-dist-worker: {e}");
            return 2;
        }
    };
    match serve(&addr, announce.as_deref().map(Path::new)) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("pd-dist-worker: {e}");
            1
        }
    }
}

/// A leaf's executable state.
struct LeafStore {
    shard: u64,
    store: DataStore,
    ctx: ExecContext,
}

/// What this worker currently is. `Load` and `Attach` are one-shot role
/// assignments from the driver.
#[derive(Default)]
struct Role {
    leaf: Option<LeafStore>,
    children: Option<Vec<ChildHandle>>,
    /// Test knob: artificial delay before answering queries.
    delay: Duration,
}

struct Work {
    request: Request,
    reply: mpsc::Sender<Response>,
    enqueued: Instant,
}

/// Bind `addr` and serve the protocol, announcing the resolved address
/// (TCP: with the kernel-assigned port) to `announce` if given.
pub fn serve(addr: &Addr, announce: Option<&Path>) -> Result<()> {
    let listener = Listener::bind(addr)?;
    let local = listener.local_addr()?;
    if let Some(announce) = announce {
        // Atomic announce: spawners poll for the file, so it must never be
        // observable half-written.
        let tmp = announce.with_extension("tmp");
        std::fs::write(&tmp, local.to_string())?;
        std::fs::rename(&tmp, announce)?;
    }
    let (queue, requests) = mpsc::channel::<Work>();

    // The single executor owns the role outright: requests run strictly in
    // arrival order (the gap between enqueue and dequeue is this process's
    // queue delay), and nothing else ever touches the state — connection
    // threads only feed the queue.
    std::thread::Builder::new()
        .name("pd-worker-exec".into())
        .spawn(move || {
            let mut role = Role::default();
            for work in requests {
                let queued = work.enqueued.elapsed();
                let response = handle(&mut role, work.request, queued)
                    .unwrap_or_else(|e| Response::Err(e.to_string()));
                let _ = work.reply.send(response);
            }
        })
        .map_err(|e| Error::Data(format!("spawn executor: {e}")))?;

    loop {
        let stream = listener.accept().map_err(|e| Error::Data(format!("accept: {e}")))?;
        let queue = queue.clone();
        std::thread::Builder::new()
            .name("pd-worker-conn".into())
            .spawn(move || connection_loop(stream, queue))
            .map_err(|e| Error::Data(format!("spawn connection: {e}")))?;
    }
}

/// Read frames off one connection until EOF, routing requests through the
/// executor queue. `Ping` answers inline (the startup handshake must not
/// wait behind a long import); `Shutdown` acks and exits the process.
/// Responses are compressed exactly when the request frame advertised
/// that compressed replies are welcome.
fn connection_loop(mut stream: Stream, queue: mpsc::Sender<Work>) {
    loop {
        let (request, compress_reply) = match read_frame_negotiated::<Request>(&mut stream) {
            Ok(Some(negotiated)) => negotiated,
            Ok(None) => return, // peer closed
            Err(e) => {
                // Corrupt frame: NAK and drop the connection — framing is
                // unrecoverable once desynchronized, and the `Malformed`
                // tag tells a leaf's parent to fail over (fresh bytes to
                // the replica) rather than abort the query.
                let _ = write_frame(&mut stream, &Response::Malformed(e.to_string()), false);
                return;
            }
        };
        match request {
            Request::Ping => {
                if write_frame(&mut stream, &Response::Ok, compress_reply).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = write_frame(&mut stream, &Response::Ok, compress_reply);
                std::process::exit(0);
            }
            request => {
                let (reply, response) = mpsc::channel();
                if queue.send(Work { request, reply, enqueued: Instant::now() }).is_err() {
                    return; // executor gone; process is doomed anyway
                }
                let Ok(response) = response.recv() else { return };
                if write_frame(&mut stream, &response, compress_reply).is_err() {
                    // Peer gave up (deadline expiry): drop the connection;
                    // the answer is stale by definition.
                    return;
                }
            }
        }
    }
}

fn handle(role: &mut Role, request: Request, queued: Duration) -> Result<Response> {
    match request {
        Request::Load(load) => {
            let (leaf, meta) = build_leaf(*load)?;
            role.leaf = Some(leaf);
            Ok(Response::Loaded(Box::new(meta)))
        }
        Request::Attach(attach) => {
            let compress = attach.compress;
            role.children =
                Some(attach.children.into_iter().map(|c| ChildHandle::new(c, compress)).collect());
            Ok(Response::Ok)
        }
        Request::Delay { micros } => {
            role.delay = Duration::from_micros(micros);
            Ok(Response::Ok)
        }
        Request::Query(query) => {
            if !role.delay.is_zero() {
                // The test knob for deadline expiry: a worker that is
                // "slow" (GC pause, overloaded box, swapping) from the
                // caller's point of view.
                std::thread::sleep(role.delay);
            }
            let answer = if let Some(leaf) = &role.leaf {
                execute_leaf(leaf, &query, queued)?
            } else if let Some(children) = &role.children {
                let mut answer = fan_out(children, &query)?;
                for report in &mut answer.reports {
                    // This merge server's own queueing delays every shard
                    // beneath it.
                    report.queue += queued;
                }
                answer
            } else {
                return Err(Error::Data(
                    "worker has neither a store (Load) nor children (Attach)".into(),
                ));
            };
            Ok(Response::Answer(Box::new(answer)))
        }
        Request::Ping => Ok(Response::Ok),
        Request::Shutdown => Ok(Response::Ok), // handled inline; unreachable via queue
    }
}

/// Import the shipped shard and summarize it. The store and context mirror
/// what `Cluster::build_shards` constructs in-process, so the process
/// split changes *where* the shard lives, not what it computes. The
/// returned [`ShardMeta`] is the worker's own account of its data — value
/// sets and extremes from the exact rows it serves, chunk count from the
/// store it built — which is what makes parent-side pruning sound.
fn build_leaf(load: LoadRequest) -> Result<(LeafStore, ShardMeta)> {
    let mut meta = ShardMeta::summarize(load.shard, &load.schema, &load.rows);
    let mut table = Table::new(load.schema);
    for row in load.rows {
        table.push_row(row)?;
    }
    let store = DataStore::build(&table, &load.build)?;
    meta.chunks = store.chunk_count() as u64;
    let ctx = ExecContext {
        sketch_m: 0,
        threads: load.threads as usize,
        result_cache: Some(Arc::new(ResultCache::new(1 << 14))),
        tiered: Some(Arc::new(TieredCache::new(
            CachePolicy::Arc,
            load.cache_budget as usize,
            load.cache_budget as usize / 2,
        ))),
    };
    Ok((LeafStore { shard: load.shard, store, ctx }, meta))
}

fn execute_leaf(leaf: &LeafStore, query: &QueryRequest, queued: Duration) -> Result<SubtreeAnswer> {
    let started = Instant::now();
    let (partial, stats) = execute_partial(&leaf.store, &query.query, &leaf.ctx)?;
    Ok(SubtreeAnswer {
        partial,
        stats,
        reports: vec![ShardReport {
            shard: leaf.shard,
            // The parent overwrites latency with its own wall-clock
            // observation; the compute time is the fallback.
            latency: started.elapsed(),
            queue: queued,
            failover: false,
        }],
    })
}
