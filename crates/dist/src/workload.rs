//! Drill-down click streams and the §6 production replay.
//!
//! §6: *"Over the three months, the system processed an average of about 2
//! million SQL queries per day [...] A single mouse click in the UI
//! typically triggers on the order of 20 SQL queries."* Each generated
//! "click" here is such a bundle: a handful of group-by queries sharing a
//! restriction stack that grows as the analyst drills down — which is
//! precisely the access pattern that lets chunk dictionaries skip and the
//! chunk-result cache hit.

use crate::cluster::Cluster;
use pd_common::rng::Rng;
use pd_common::{DataType, Value};
use pd_core::{BuildOptions, DataStore, QueryResult, ScanStats};
use pd_data::Table;
use std::sync::RwLock;
use std::time::Duration;

pub use pd_common::Result;

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of UI clicks to simulate.
    pub clicks: usize,
    /// SQL queries triggered per click (the paper observes ~20).
    pub queries_per_click: usize,
    /// Maximum depth of the drill-down restriction stack.
    pub max_drill_depth: usize,
    /// RNG seed; equal specs generate identical workloads.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec { clicks: 10, queries_per_click: 20, max_drill_depth: 5, seed: 42 }
    }
}

/// One UI click: a bundle of queries sharing a restriction stack.
#[derive(Debug, Clone)]
pub struct Click {
    pub queries: Vec<String>,
}

/// A generated drill-down session.
#[derive(Debug, Clone)]
pub struct DrillDownWorkload {
    pub clicks: Vec<Click>,
}

impl DrillDownWorkload {
    /// Generate a workload against `table`'s schema, sampling restriction
    /// values from actual rows so selectivity mirrors the data.
    pub fn generate(table: &Table, spec: &WorkloadSpec) -> Result<DrillDownWorkload> {
        let schema = table.schema();
        let dims: Vec<(usize, String)> = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.data_type == DataType::Str)
            .map(|(i, f)| (i, f.name.clone()))
            .collect();
        let measures: Vec<String> = schema
            .fields()
            .iter()
            .filter(|f| matches!(f.data_type, DataType::Int | DataType::Float))
            .map(|f| f.name.clone())
            .collect();
        if dims.is_empty() || table.is_empty() {
            return Err(pd_common::Error::Data(
                "drill-down workloads need at least one string column and one row".into(),
            ));
        }

        // Drill order: lowest-cardinality dimensions first — analysts
        // narrow by the "natural primary key" fields (country before
        // table_name before user-ids), which is also what makes chunk
        // skipping and the fully-active-chunk cache effective.
        let mut drill_order: Vec<(usize, String)> = dims.clone();
        drill_order.sort_by_key(|(i, _)| {
            let mut distinct: Vec<&Value> = table.column(*i).iter().collect();
            distinct.sort_unstable();
            distinct.dedup();
            distinct.len()
        });

        let mut rng = Rng::seed_from_u64(spec.seed);
        let mut clicks = Vec::with_capacity(spec.clicks);
        // The restriction stack: (column name, literal) conjuncts. A new
        // "analysis session" starts whenever the stack tops out.
        let mut stack: Vec<(String, String)> = Vec::new();
        for _ in 0..spec.clicks {
            if stack.len() >= spec.max_drill_depth.max(1).min(drill_order.len()) {
                stack.clear();
            }
            // Drill one level deeper: restrict the next dimension to a
            // value sampled from a real row (so the restriction is
            // satisfiable and correlates with the partitioning).
            let (col_idx, col_name) = drill_order[stack.len()].clone();
            let row = rng.range_usize(0, table.len());
            let value = match &table.column(col_idx)[row] {
                Value::Str(s) => s.replace('\'', ""),
                other => other.render().into_owned(),
            };
            stack.push((col_name, value));

            // The click refreshes one chart per dimension (plus measure
            // charts) under the current restriction — the paper's "set of
            // charts" updating together. A chart is *not* filtered by its
            // own dimension (the country chart keeps showing all countries
            // within the other filters), which is also what re-surfaces
            // fully active chunks for the §6 result cache.
            let mut queries = Vec::with_capacity(spec.queries_per_click);
            let mut i = 0usize;
            while queries.len() < spec.queries_per_click {
                let (_, dim) = &dims[i % dims.len()];
                let agg = if measures.is_empty() {
                    "COUNT(*) as c".to_owned()
                } else {
                    let m = &measures[i % measures.len()];
                    match i % 3 {
                        0 => "COUNT(*) as c".to_owned(),
                        1 => format!("COUNT(*) as c, SUM({m}) as s"),
                        _ => format!("COUNT(*) as c, MIN({m}) as mn, MAX({m}) as mx"),
                    }
                };
                let conjuncts: Vec<String> = stack
                    .iter()
                    .filter(|(c, _)| c != dim)
                    .map(|(c, v)| format!("{c} = '{v}'"))
                    .collect();
                let where_clause = if conjuncts.is_empty() {
                    String::new()
                } else {
                    format!(" WHERE {}", conjuncts.join(" AND "))
                };
                queries.push(format!(
                    "SELECT {dim}, {agg} FROM data{where_clause} GROUP BY {dim} ORDER BY c DESC LIMIT 10"
                ));
                i += 1;
            }
            clicks.push(Click { queries });
        }
        Ok(DrillDownWorkload { clicks })
    }

    /// Total number of SQL queries across all clicks.
    pub fn query_count(&self) -> usize {
        self.clicks.iter().map(|c| c.queries.len()).sum()
    }
}

/// One replayed query's outcome.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    pub sql: String,
    pub stats: ScanStats,
    pub latency: Duration,
    /// Shards served from the shard-level result cache.
    pub shard_cache_hits: usize,
}

/// Aggregated replay results: the §6 production statistics.
#[derive(Debug, Clone, Default)]
pub struct ProductionReport {
    pub queries: Vec<QueryRecord>,
}

impl ProductionReport {
    fn totals(&self) -> ScanStats {
        let mut total = ScanStats::default();
        for q in &self.queries {
            total += &q.stats;
        }
        total
    }

    /// Percent of underlying rows proven inactive (paper: 92.41%).
    pub fn skipped_percent(&self) -> f64 {
        100.0 * self.totals().skipped_fraction()
    }

    /// Percent of rows served from cached chunk results (paper: 5.02%).
    pub fn cached_percent(&self) -> f64 {
        100.0 * self.totals().cached_fraction()
    }

    /// Percent of rows actually scanned (paper: 2.66%).
    pub fn scanned_percent(&self) -> f64 {
        100.0 * self.totals().scanned_fraction()
    }

    /// Total shard subqueries answered from the shard-level result cache.
    pub fn shard_cache_hits(&self) -> usize {
        self.queries.iter().map(|q| q.shard_cache_hits).sum()
    }

    /// Fraction of queries that touched no (modeled) disk (paper: >70%).
    pub fn disk_free_fraction(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().filter(|q| q.stats.disk_free()).count() as f64
            / self.queries.len() as f64
    }

    /// Figure 5 buckets: `(bucket, avg latency, query count)` where bucket
    /// 0 holds disk-free queries and bucket `k` holds queries loading at
    /// least `2^(k-1)` bytes.
    pub fn figure5_buckets(&self) -> Vec<(u32, Duration, usize)> {
        let mut sums: std::collections::BTreeMap<u32, (Duration, usize)> =
            std::collections::BTreeMap::new();
        for q in &self.queries {
            let bucket = match q.stats.disk_bytes {
                0 => 0,
                b => 64 - b.leading_zeros(),
            };
            let entry = sums.entry(bucket).or_insert((Duration::ZERO, 0));
            entry.0 += q.latency;
            entry.1 += 1;
        }
        sums.into_iter().map(|(b, (total, n))| (b, total / n.max(1) as u32, n)).collect()
    }
}

/// What the append-while-serving replay observed.
#[derive(Debug, Clone)]
pub struct AppendServeReport {
    /// Queries answered while ingest was (potentially) in flight.
    pub queries: usize,
    /// Rows streamed in across all append batches.
    pub appended_rows: u64,
    /// `matched_by_epoch[e]` = concurrent answers bit-identical to the
    /// snapshot after `e` batches (a result identical across several
    /// epochs counts toward the earliest). Sums to `queries`.
    pub matched_by_epoch: Vec<usize>,
}

/// Replay drill-down queries **while ingesting**: query threads read the
/// cluster as an appender streams `batches` in via [`Cluster::append`].
///
/// The §6 equivalence matrix, under concurrent ingest: every answer a
/// query thread receives must be bit-identical to **some** consistent
/// snapshot epoch — a single-store engine built over the base table plus
/// the first `e` batches, for some `e` — and the final answers must match
/// the final epoch. A torn read (one shard answering pre-append, another
/// post-append) matches *no* snapshot and fails the replay. Appends take
/// the write lock, queries the read lock, so the lock discipline under
/// test is exactly the one `append(&mut self)` / `query(&self)` enforce
/// at compile time for single-threaded callers.
pub fn run_append_while_serving(
    cluster: &RwLock<Cluster>,
    base: &Table,
    batches: &[Table],
    sqls: &[String],
    query_threads: usize,
    rounds: usize,
) -> Result<AppendServeReport> {
    // Reference snapshots: the already-trusted single-store engine over
    // each consistent prefix (after 0, 1, ..., all batches).
    let mut prefix = base.clone();
    let mut snapshots = Vec::with_capacity(batches.len() + 1);
    snapshots.push(DataStore::build(&prefix, &BuildOptions::basic())?);
    for batch in batches {
        for row in batch.iter_rows() {
            prefix.push_row(row)?;
        }
        snapshots.push(DataStore::build(&prefix, &BuildOptions::basic())?);
    }
    let expected: Vec<Vec<QueryResult>> = snapshots
        .iter()
        .map(|store| sqls.iter().map(|sql| pd_core::query(store, sql).map(|(r, _)| r)).collect())
        .collect::<Result<_>>()?;

    let appended_rows: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let mut matched_by_epoch = vec![0usize; expected.len()];
    let mut queries = 0usize;
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::with_capacity(query_threads);
        for _ in 0..query_threads {
            let expected = &expected;
            handles.push(scope.spawn(move || -> Result<Vec<usize>> {
                let mut counts = vec![0usize; expected.len()];
                for _ in 0..rounds {
                    for (qi, sql) in sqls.iter().enumerate() {
                        let result = {
                            let guard = cluster.read().expect("a replay thread panicked mid-query");
                            guard.query(sql)?.result
                        };
                        let Some(epoch) = expected.iter().position(|per_sql| per_sql[qi] == result)
                        else {
                            return Err(pd_common::Error::Data(format!(
                                "torn read: an answer to `{sql}` matches no consistent \
                                 snapshot epoch"
                            )));
                        };
                        counts[epoch] += 1;
                    }
                }
                Ok(counts)
            }));
        }
        // Ingest on this thread, concurrently with the queriers: yield
        // between batches so reads interleave with epochs 0..batches.
        for batch in batches {
            std::thread::sleep(Duration::from_millis(2));
            cluster.write().expect("a replay thread panicked mid-query").append(batch)?;
        }
        for handle in handles {
            let counts = handle.join().expect("query thread panicked")?;
            for (slot, count) in matched_by_epoch.iter_mut().zip(&counts) {
                *slot += count;
                queries += count;
            }
        }
        Ok(())
    })?;

    // Quiesced, every batch absorbed: answers must now match the *final*
    // epoch exactly — "some snapshot" is only for in-flight reads.
    let final_epoch = expected.len() - 1;
    let guard = cluster.read().expect("a replay thread panicked mid-query");
    for (qi, sql) in sqls.iter().enumerate() {
        let result = guard.query(sql)?.result;
        if result != expected[final_epoch][qi] {
            return Err(pd_common::Error::Data(format!(
                "after the last append, `{sql}` still answers from an old epoch"
            )));
        }
    }
    Ok(AppendServeReport { queries, appended_rows, matched_by_epoch })
}

/// Replay `workload` against `cluster`, recording per-query statistics.
pub fn run_production(cluster: &Cluster, workload: &DrillDownWorkload) -> Result<ProductionReport> {
    let mut report = ProductionReport::default();
    for click in &workload.clicks {
        for sql in &click.queries {
            let outcome = cluster.query(sql)?;
            report.queries.push(QueryRecord {
                sql: sql.clone(),
                stats: outcome.stats,
                latency: outcome.latency,
                shard_cache_hits: outcome.shard_cache_hits,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use pd_core::BuildOptions;
    use pd_data::{generate_logs, LogsSpec};

    #[test]
    fn workload_generation_is_deterministic() {
        let table = generate_logs(&LogsSpec::scaled(1_000));
        let spec = WorkloadSpec { clicks: 4, queries_per_click: 6, ..Default::default() };
        let a = DrillDownWorkload::generate(&table, &spec).unwrap();
        let b = DrillDownWorkload::generate(&table, &spec).unwrap();
        assert_eq!(a.query_count(), 24);
        for (ca, cb) in a.clicks.iter().zip(&b.clicks) {
            assert_eq!(ca.queries, cb.queries);
        }
    }

    #[test]
    fn production_replay_skips_and_caches() {
        let table = generate_logs(&LogsSpec::scaled(3_000));
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = 200;
        }
        let cluster =
            Cluster::build(&table, &ClusterConfig { shards: 2, build, ..Default::default() })
                .unwrap();
        let workload = DrillDownWorkload::generate(
            &table,
            &WorkloadSpec { clicks: 8, queries_per_click: 5, max_drill_depth: 3, seed: 7 },
        )
        .unwrap();
        let report = run_production(&cluster, &workload).unwrap();
        assert_eq!(report.queries.len(), 40);
        assert!(
            report.skipped_percent() > 20.0,
            "drill-downs must skip: {:.1}%",
            report.skipped_percent()
        );
        assert!(
            report.cached_percent() > 0.0,
            "repeated chart queries must hit the chunk-result cache"
        );
        let total = report.skipped_percent() + report.cached_percent() + report.scanned_percent();
        assert!((total - 100.0).abs() < 1e-6, "shares sum to 100: {total}");
        assert!(!report.figure5_buckets().is_empty());
    }

    #[test]
    fn append_while_serving_matches_a_consistent_epoch() {
        // Concurrent ingest + drill-down: three batches stream in while
        // two query threads hammer the cluster. Every answer must be
        // bit-identical to some consistent snapshot, and the post-ingest
        // answers must match the final epoch.
        let table = generate_logs(&LogsSpec::scaled(3_000));
        let slice = |lo: usize, hi: usize| {
            let rows: Vec<usize> = (lo..hi).collect();
            table.select_rows(&rows)
        };
        let base = slice(0, 2_400);
        let batches: Vec<Table> =
            (0..3).map(|b| slice(2_400 + b * 200, 2_400 + (b + 1) * 200)).collect();
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = 200;
        }
        let cluster = RwLock::new(
            Cluster::build(&base, &ClusterConfig { shards: 3, build, ..Default::default() })
                .unwrap(),
        );
        let sqls: Vec<String> = [
            "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT country, SUM(latency) s FROM logs GROUP BY country ORDER BY s DESC LIMIT 5",
            "SELECT COUNT(*) c, MIN(user) lo, MAX(user) hi FROM logs",
            "SELECT table_name, COUNT(*) c FROM logs WHERE country = 'DE' \
             GROUP BY table_name ORDER BY c DESC LIMIT 10",
        ]
        .map(String::from)
        .into_iter()
        .collect();
        let report = run_append_while_serving(&cluster, &base, &batches, &sqls, 2, 12).unwrap();
        assert_eq!(report.queries, 2 * 12 * sqls.len());
        assert_eq!(report.appended_rows, 600);
        assert_eq!(report.matched_by_epoch.len(), 4);
        assert_eq!(report.matched_by_epoch.iter().sum::<usize>(), report.queries);
        // The epoch rule held the whole way: the cluster ends at base
        // epoch 1 plus one bump per batch.
        assert_eq!(cluster.read().unwrap().epoch(), 1 + batches.len() as u64);
    }

    #[test]
    fn drilldown_workload_hits_shard_cache_with_unchanged_results() {
        // The acceptance property of the shard-level cache: a drill-down
        // replay records cache hits, and every query's result is
        // bit-identical to the same replay with the cache disabled.
        let table = generate_logs(&LogsSpec::scaled(2_500));
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = 200;
        }
        let cached = Cluster::build(
            &table,
            &ClusterConfig { shards: 3, build: build.clone(), ..Default::default() },
        )
        .unwrap();
        let uncached = Cluster::build(
            &table,
            &ClusterConfig { shards: 3, shard_cache: 0, build, ..Default::default() },
        )
        .unwrap();
        let workload = DrillDownWorkload::generate(
            &table,
            &WorkloadSpec { clicks: 6, queries_per_click: 8, max_drill_depth: 3, seed: 11 },
        )
        .unwrap();
        let mut hits = 0;
        for click in &workload.clicks {
            for sql in &click.queries {
                let a = cached.query(sql).unwrap();
                let b = uncached.query(sql).unwrap();
                assert_eq!(a.result, b.result, "shard cache changed a result: {sql}");
                hits += a.shard_cache_hits;
            }
        }
        assert!(hits > 0, "the drill-down pattern must re-surface cached shard partials");
        let (cache_hits, _) = cached.shard_cache_stats();
        assert_eq!(hits as u64, cache_hits);
        assert_eq!(uncached.shard_cache_stats(), (0, 0));
    }
}
