//! The seeded chaos harness: drive the *real* process-split computation
//! tree through 100 deterministic fault scenarios — process kills,
//! connection resets, torn reply frames and injected delays, aimed at
//! leaves, replicas and merge servers alike — and hold the robustness
//! contract on every single one:
//!
//! 1. the query either returns rows **bit-identical** to the single-store
//!    engine, or fails with a **clean typed** [`pd_common::RpcError`];
//! 2. it never hangs (every query spends one bounded budget end to end —
//!    the suite itself finishing under the CI timeout is the assertion);
//! 3. it never panics, and never returns a silent partial answer (that is
//!    what the bit-identity check catches: a dropped subtree would change
//!    the aggregate values).
//!
//! Fault draws depend only on `(seed, query id, node name)`, so every
//! scenario is reproducible by seed — a failing seed is a repro command,
//! not a flake.

use pd_common::Error;
use pd_core::{query, BuildOptions, DataStore, QueryResult};
use pd_data::{generate_logs, LogsSpec};
use pd_dist::{ChaosModel, Cluster, ClusterConfig, RpcConfig, Transport, TreeShape};
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pd-dist-worker"))
}

const QUERIES: [&str; 4] = [
    "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT table_name, COUNT(*) c, SUM(latency) s FROM logs GROUP BY table_name ORDER BY c DESC",
    "SELECT country, AVG(latency) a FROM logs GROUP BY country ORDER BY country ASC",
    "SELECT COUNT(*) FROM logs",
];

fn chaos_model(seed: u64) -> ChaosModel {
    ChaosModel {
        seed,
        kill_probability: 0.05,
        reset_probability: 0.10,
        torn_probability: 0.10,
        delay_probability: 0.20,
        delay_range: (Duration::from_millis(1), Duration::from_millis(15)),
        kill_nodes: Vec::new(),
    }
}

/// 5 seeds × 5 rounds × 4 queries = 100 injected scenarios. The tree is
/// respawned between rounds (`rebuild`) so killed processes come back —
/// within a round, later queries also exercise the "peer already dead"
/// paths (bounded connect retries, failover to the surviving replica).
#[test]
fn every_injected_fault_yields_identical_rows_or_a_typed_error() {
    let table = generate_logs(&LogsSpec::scaled(600));
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    let store = DataStore::build(&table, &build).unwrap();
    let expected: Vec<QueryResult> =
        QUERIES.iter().map(|sql| query(&store, sql).unwrap().0).collect();

    // 3 shards at fanout 2: primaries, replicas *and* two merge servers
    // (m1_0, m1_1) in the fault-target population — 8 nodes per tree.
    let mut cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 3,
            replication: true,
            build,
            tree: TreeShape { fanout: 2 },
            transport: Transport::Rpc(RpcConfig {
                worker_bin: Some(worker_bin()),
                budget: Duration::from_secs(5),
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();

    let (mut scenarios, mut clean, mut faulted) = (0u32, 0u32, 0u32);
    for seed in [0x0c4a_0001u64, 0x0c4a_0002, 0x0c4a_0003, 0x0c4a_0004, 0x0c4a_0005] {
        cluster.set_chaos(chaos_model(seed));
        for round in 0..5 {
            for (sql, expect) in QUERIES.iter().zip(&expected) {
                scenarios += 1;
                match cluster.query(sql) {
                    Ok(outcome) => {
                        clean += 1;
                        assert_eq!(
                            &outcome.result, expect,
                            "seed {seed:#x} round {round}: a query that survives injected \
                             faults must be bit-identical — a partial answer is corruption: \
                             {sql}"
                        );
                        assert_eq!(
                            outcome.stats.rows_skipped
                                + outcome.stats.rows_cached
                                + outcome.stats.rows_scanned,
                            outcome.stats.rows_total,
                            "seed {seed:#x} round {round}: accounting balances: {sql}"
                        );
                    }
                    Err(err) => {
                        faulted += 1;
                        assert!(
                            matches!(err, Error::Rpc(_)),
                            "seed {seed:#x} round {round}: an injected fault must surface \
                             as a typed rpc error, got: {err} ({sql})"
                        );
                    }
                }
            }
            // Respawn killed processes so the next round starts from a
            // full tree (and rebuilds mid-chaos are themselves exercised).
            cluster.rebuild(&table).unwrap();
        }
    }

    assert_eq!(scenarios, 100, "the harness must run the full scenario matrix");
    assert!(
        clean >= 20,
        "replication + hedging must absorb most single-node faults: only {clean}/100 clean"
    );
    assert!(
        faulted >= 5,
        "these probabilities must produce some unrecoverable faults \
         (merge-server kills have no replica): only {faulted}/100 faulted"
    );
}

/// The same seed against a fresh tree injects the same faults — the
/// error/success *pattern* of a whole chaos run is reproducible, which is
/// what makes a failing seed above a repro command.
#[test]
fn chaos_outcomes_are_reproducible_by_seed() {
    let table = generate_logs(&LogsSpec::scaled(300));
    let mut build = BuildOptions::production(&["country"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 100;
    }
    let run = |seed: u64| -> Vec<bool> {
        let mut cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards: 2,
                replication: false, // no failover: faults surface directly
                build: build.clone(),
                tree: TreeShape { fanout: 2 },
                transport: Transport::Rpc(RpcConfig {
                    worker_bin: Some(worker_bin()),
                    budget: Duration::from_secs(5),
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        // Kills only: resets/torn frames hit *connections*, whose exact
        // interleaving with reply writes is timing-dependent — process
        // death is the outcome that must be exactly seed-stable.
        cluster.set_chaos(ChaosModel { seed, kill_probability: 0.25, ..ChaosModel::default() });
        let mut outcomes = Vec::new();
        for _ in 0..4 {
            for sql in [
                "SELECT COUNT(*) FROM logs",
                "SELECT country, COUNT(*) c FROM logs GROUP BY country",
            ] {
                outcomes.push(cluster.query(sql).is_ok());
            }
            cluster.rebuild(&table).unwrap();
        }
        outcomes
    };
    let a = run(7);
    assert_eq!(a, run(7), "equal seeds must produce equal success patterns");
    assert!(a.iter().any(|ok| !ok), "kill probability 0.25 over 8 queries x 3 nodes must kill");
}
