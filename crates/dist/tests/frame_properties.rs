//! Randomized properties of the compressed RPC frame path, mirroring
//! `pd-core`'s `codec_properties.rs`: every frame must round-trip
//! bit-identically with compression off *and* on, and no amount of
//! truncation or bit-flipping may ever panic the reader — a corrupt peer
//! is an error to fail over from, not a crash.

use pd_common::rng::Rng;
use pd_common::{DataType, Row, RpcError, Schema, Value};
use pd_core::{execute_partial, BuildOptions, DataStore, ExecContext, PartialResult, ScanStats};
use pd_data::Table;
use pd_dist::rpc::{
    encode_frame, read_frame, read_frame_negotiated, AppendRequest, LoadRequest, QueryRequest,
    Request, Response, ShardReport, SubtreeAnswer,
};
use pd_dist::{ChaosDirective, ChaosFault};
use pd_encoding::TableDelta;
use pd_sql::{analyze, parse_query};
use std::time::Duration;

fn random_value(rng: &mut Rng) -> Value {
    match rng.range_usize(0, 4) {
        0 => Value::Null,
        1 => Value::Int(rng.next_u64() as i64),
        2 => Value::Float(f64::from_bits(rng.next_u64())), // NaN payloads included
        _ => {
            let len = rng.range_usize(0, 12);
            Value::Str((0..len).map(|_| (b'a' + rng.range_u64(0, 26) as u8) as char).collect())
        }
    }
}

/// A real partial result (with FloatSum superaccumulator states) to embed
/// in answers.
fn real_partial() -> PartialResult {
    let schema = Schema::of(&[("k", DataType::Str), ("x", DataType::Float)]);
    let mut table = Table::new(schema);
    for i in 0..60i64 {
        table
            .push_row(Row(vec![
                Value::from(["a", "b", "c"][(i % 3) as usize]),
                Value::Float(i as f64 * 0.25 - 3.0),
            ]))
            .unwrap();
    }
    let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
    let analyzed =
        analyze(&parse_query("SELECT k, COUNT(*) c, SUM(x) s FROM t GROUP BY k").unwrap()).unwrap();
    let ctx = ExecContext { threads: 1, ..Default::default() };
    execute_partial(&store, &analyzed, &ctx).unwrap().0
}

/// A random (valid) dictionary-delta append: typed columns, no nulls —
/// the codec's own strictness tests cover invalid shapes.
fn random_append(rng: &mut Rng) -> Request {
    let rows = rng.range_usize(1, 40);
    let schema = Schema::of(&[("k", DataType::Str), ("v", DataType::Int)]);
    let keys: Vec<Value> =
        (0..rows).map(|_| Value::from(format!("k{}", rng.range_u64(0, 12)))).collect();
    let vals: Vec<Value> = (0..rows).map(|_| Value::Int(rng.next_u64() as i64)).collect();
    Request::Append(Box::new(AppendRequest {
        shard: rng.next_u64() % 64,
        delta: TableDelta::from_columns(schema, &[&keys, &vals]).unwrap(),
        epoch: rng.next_u64(),
    }))
}

fn random_request(rng: &mut Rng, case: usize) -> Request {
    match case % 5 {
        4 => random_append(rng),
        0 => {
            let rows = (0..rng.range_usize(0, 40))
                .map(|_| Row(vec![random_value(rng), random_value(rng)]))
                .collect();
            Request::Load(Box::new(LoadRequest {
                shard: rng.next_u64() % 64,
                schema: Schema::of(&[("a", DataType::Str), ("b", DataType::Float)]),
                rows,
                build: BuildOptions::basic(),
                threads: rng.next_u64() % 4,
                cache_budget: rng.next_u64() % (1 << 24),
                cache_entries: rng.next_u64() % 256,
                epoch: rng.next_u64(),
                name: format!("l{}p", rng.next_u64() % 64),
            }))
        }
        1 => {
            let sqls = [
                "SELECT k, COUNT(*) c FROM t WHERE k IN ('a','b') GROUP BY k",
                "SELECT COUNT(*), SUM(x) FROM t WHERE NOT (k = 'z' OR x > 1.5)",
                "SELECT k, AVG(x) a FROM t GROUP BY k HAVING a > 0 ORDER BY a DESC LIMIT 3",
            ];
            let sql = sqls[rng.range_usize(0, sqls.len())];
            let chaos = (0..rng.range_usize(0, 4))
                .map(|_| ChaosDirective {
                    node: format!("m{}_{}", rng.next_u64() % 4, rng.next_u64() % 8),
                    fault: match rng.range_usize(0, 4) {
                        0 => ChaosFault::Kill,
                        1 => ChaosFault::Reset,
                        2 => ChaosFault::Torn,
                        _ => ChaosFault::Delay(Duration::from_micros(rng.next_u64() % 1_000_000)),
                    },
                })
                .collect();
            Request::Query(Box::new(QueryRequest {
                query: analyze(&parse_query(sql).unwrap()).unwrap(),
                budget: Duration::from_nanos(rng.next_u64() % 1_000_000_000),
                hedge_micros: rng.next_u64() % 1_000_000,
                killed: (0..rng.range_usize(0, 5)).map(|_| rng.next_u64() % 8).collect(),
                epoch: rng.next_u64(),
                chaos,
                chunk_pruning: rng.next_u64().is_multiple_of(2),
            }))
        }
        2 => Request::Delay { micros: rng.next_u64() },
        _ => Request::Ping,
    }
}

fn random_response(rng: &mut Rng, partial: &PartialResult, case: usize) -> Response {
    match case % 4 {
        0 => {
            let reports = (0..rng.range_usize(0, 6))
                .map(|_| ShardReport {
                    shard: rng.next_u64() % 16,
                    latency: Duration::from_nanos(rng.next_u64() % u64::MAX),
                    queue: Duration::from_nanos(rng.next_u64() % 1_000_000),
                    failover: rng.next_u64().is_multiple_of(2),
                    hedged: rng.next_u64().is_multiple_of(5),
                    cache_hit: rng.next_u64().is_multiple_of(3),
                })
                .collect();
            Response::Answer(Box::new(SubtreeAnswer {
                partial: partial.clone(),
                stats: ScanStats {
                    rows_total: rng.next_u64() % 10_000,
                    rows_skipped: rng.next_u64() % 10_000,
                    subtrees_pruned: rng.range_usize(0, 4),
                    chunks_pruned_remote: rng.range_usize(0, 64),
                    worker_cache_hits: rng.range_usize(0, 4),
                    ..Default::default()
                },
                reports,
            }))
        }
        1 => Response::Err(format!("error {}", rng.next_u64())),
        2 => {
            let message = format!("fault {}", rng.next_u64());
            Response::Fault(match rng.range_usize(0, 6) {
                0 => RpcError::Deadline(message),
                1 => RpcError::ConnRefused(message),
                2 => RpcError::Decode(message),
                3 => RpcError::VersionMismatch(message),
                4 => RpcError::PeerGone(message),
                _ => RpcError::Overloaded(message),
            })
        }
        _ => Response::Ok,
    }
}

#[test]
fn frames_round_trip_bit_identically_compressed_and_raw() {
    let mut rng = Rng::seed_from_u64(0xf4a3_0001);
    let partial = real_partial();
    for case in 0..48 {
        let request = random_request(&mut rng, case);
        let response = random_response(&mut rng, &partial, case);
        for compress in [false, true] {
            let frame = encode_frame(&request, compress).unwrap();
            let (back, accepts) =
                read_frame_negotiated::<Request>(&mut frame.as_slice()).unwrap().unwrap();
            assert_eq!(back, request, "case {case} compress={compress}");
            assert_eq!(accepts, compress, "the negotiation bit mirrors the sender's mode");

            let frame = encode_frame(&response, compress).unwrap();
            let back: Response = read_frame(&mut frame.as_slice()).unwrap().unwrap();
            assert_eq!(back, response, "case {case} compress={compress}");
        }
    }
}

#[test]
fn truncated_frames_error_and_never_panic() {
    let mut rng = Rng::seed_from_u64(0xf4a3_0002);
    let partial = real_partial();
    for case in 0..16 {
        let response = random_response(&mut rng, &partial, case);
        for compress in [false, true] {
            let frame = encode_frame(&response, compress).unwrap();
            for cut in 0..frame.len() {
                // Any outcome but a decoded message (or a panic) is fine:
                // a partial header reads as clean EOF, everything else is
                // a hard error for the failover path.
                if let Ok(Some(_)) = read_frame::<Response>(&mut frame[..cut].as_ref()) {
                    panic!("case {case} cut={cut}: truncated frame decoded");
                }
            }
        }
    }
    // Append frames carry nested dictionary payloads with their own length
    // prefixes — every truncation point must still error, never decode.
    for case in 0..8 {
        let request = random_append(&mut rng);
        for compress in [false, true] {
            let frame = encode_frame(&request, compress).unwrap();
            for cut in 0..frame.len() {
                if let Ok(Some(_)) = read_frame::<Request>(&mut frame[..cut].as_ref()) {
                    panic!("append case {case} cut={cut}: truncated frame decoded");
                }
            }
        }
    }
}

#[test]
fn bit_flips_never_panic_the_reader() {
    let mut rng = Rng::seed_from_u64(0xf4a3_0003);
    let partial = real_partial();
    for case in 0..24 {
        let request = random_request(&mut rng, case);
        let response = random_response(&mut rng, &partial, case);
        for compress in [false, true] {
            for frame in [
                encode_frame(&request, compress).unwrap(),
                encode_frame(&response, compress).unwrap(),
            ] {
                for _ in 0..32 {
                    let mut corrupt = frame.clone();
                    let flips = rng.range_usize(1, 4);
                    for _ in 0..flips {
                        let byte = rng.range_usize(0, corrupt.len());
                        let bit = rng.range_u64(0, 8) as u8;
                        corrupt[byte] ^= 1 << bit;
                    }
                    // Any Result is acceptable — the reader must neither
                    // panic nor over-allocate (length caps are validated
                    // before any allocation happens).
                    let _ = read_frame::<Request>(&mut corrupt.as_slice());
                    let _ = read_frame::<Response>(&mut corrupt.as_slice());
                }
            }
        }
    }
}

#[test]
fn decompression_bombs_are_rejected_before_inflation() {
    // A compressed frame whose Zippy prelude claims an absurd
    // uncompressed length must be rejected up front — the corruption
    // contract is Err, never a multi-gigabyte allocation.
    use pd_common::wire::{FrameHeader, FRAME_FLAG_COMPRESSED};
    let mut body = Vec::new();
    pd_compress::varint::write_u64(&mut body, 1 << 40); // claims 1 TiB
    body.extend_from_slice(&[[0x80u8, 0x01]; 8].concat()); // overlapping copy ops
    let mut frame =
        FrameHeader { flags: FRAME_FLAG_COMPRESSED, len: body.len() as u32 }.to_bytes().to_vec();
    frame.extend_from_slice(&body);
    let err = read_frame::<Response>(&mut frame.as_slice()).unwrap_err();
    assert!(err.to_string().contains("claims"), "{err}");
}

#[test]
fn garbage_bytes_never_panic_the_reader() {
    let mut rng = Rng::seed_from_u64(0xf4a3_0004);
    for _ in 0..64 {
        let len = rng.range_usize(0, 512);
        let garbage: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
        let _ = read_frame::<Request>(&mut garbage.as_slice());
        let _ = read_frame::<Response>(&mut garbage.as_slice());
    }
}

// --- typed decode errors on the live client read path -----------------------
//
// Regression coverage for the decode-surface panic sweep: the read side of
// `rpc.rs` must turn every hostile byte sequence a rogue peer can send into
// a *typed* `Err(Error::Rpc(..))` — `RpcError::Decode` for corrupt frames —
// so the failover machinery can dispatch on the variant. A panic (or an
// untyped error) here would take down the whole merge server instead of one
// child connection.

use pd_common::wire::{FrameHeader, FRAME_FLAG_COMPRESSED, FRAME_VERSION};
use pd_common::Error;
use pd_dist::rpc::{Addr, Listener, RpcClient};
use std::io::Write;

/// Bind a loopback listener and serve exactly one connection with `serve`,
/// then run `check` against a connected client.
fn with_rogue_server(
    serve: impl FnOnce(&mut pd_dist::rpc::Stream) + Send + 'static,
    check: impl FnOnce(&mut RpcClient),
) {
    let listener = Listener::bind(&Addr::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let mut stream = listener.accept().unwrap();
        serve(&mut stream);
    });
    let mut client = RpcClient::new(addr, false);
    client.connect_with_retry(Duration::from_secs(2)).unwrap();
    check(&mut client);
    server.join().unwrap();
}

fn expect_rpc_fault(client: &mut RpcClient) -> RpcError {
    match client.call(&Request::Ping, Duration::from_secs(2)) {
        Err(Error::Rpc(fault)) => fault,
        other => panic!("expected a typed rpc fault, got {other:?}"),
    }
}

#[test]
fn corrupt_response_body_is_a_typed_decode_error() {
    // A well-formed header whose body is garbage (no valid Response tag):
    // the decode failure must surface as RpcError::Decode, never a panic.
    with_rogue_server(
        |stream| {
            let body = [0xEEu8; 32];
            let mut frame = FrameHeader { flags: 0, len: body.len() as u32 }.to_bytes().to_vec();
            frame.extend_from_slice(&body);
            stream.write_all(&frame).unwrap();
            stream.flush().unwrap();
        },
        |client| {
            let fault = expect_rpc_fault(client);
            assert!(matches!(fault, RpcError::Decode(_)), "got {fault:?}");
        },
    );
}

#[test]
fn corrupt_compressed_body_is_a_typed_decode_error() {
    // The compressed path inflates before decoding — corruption inside the
    // Zippy payload must come out just as typed as a raw-body decode failure.
    with_rogue_server(
        |stream| {
            let body = [0xA5u8; 24];
            let mut frame = FrameHeader { flags: FRAME_FLAG_COMPRESSED, len: body.len() as u32 }
                .to_bytes()
                .to_vec();
            frame.extend_from_slice(&body);
            stream.write_all(&frame).unwrap();
            stream.flush().unwrap();
        },
        |client| {
            let fault = expect_rpc_fault(client);
            assert!(matches!(fault, RpcError::Decode(_)), "got {fault:?}");
        },
    );
}

#[test]
fn torn_frame_then_close_is_a_typed_peer_gone() {
    // A header promising 64 bytes followed by half of them and a close:
    // the deadline reader must report the vanished peer, typed.
    with_rogue_server(
        |stream| {
            let mut frame = FrameHeader { flags: 0, len: 64 }.to_bytes().to_vec();
            frame.extend_from_slice(&[0u8; 32]);
            stream.write_all(&frame).unwrap();
            stream.flush().unwrap();
            // Dropping the stream closes the connection mid-frame.
        },
        |client| {
            let fault = expect_rpc_fault(client);
            assert!(matches!(fault, RpcError::PeerGone(_)), "got {fault:?}");
        },
    );
}

#[test]
fn version_skew_is_a_typed_version_mismatch() {
    with_rogue_server(
        |stream| {
            // Hand-craft a header from a different protocol generation.
            let bad = [FRAME_VERSION.wrapping_add(1), 0, 4, 0, 0, 0];
            stream.write_all(&bad).unwrap();
            stream.write_all(&[0u8; 4]).unwrap();
            stream.flush().unwrap();
        },
        |client| {
            let fault = expect_rpc_fault(client);
            assert!(matches!(fault, RpcError::VersionMismatch(_)), "got {fault:?}");
        },
    );
}

#[test]
fn unknown_header_flags_are_a_typed_decode_error() {
    with_rogue_server(
        |stream| {
            let bad = [FRAME_VERSION, 0xFE, 4, 0, 0, 0];
            stream.write_all(&bad).unwrap();
            stream.write_all(&[0u8; 4]).unwrap();
            stream.flush().unwrap();
        },
        |client| {
            let fault = expect_rpc_fault(client);
            assert!(matches!(fault, RpcError::Decode(_)), "got {fault:?}");
        },
    );
}
