//! End-to-end tests of the process-split computation tree: real
//! `pd-dist-worker` processes behind the RPC boundary, driven through
//! [`Cluster`] with [`Transport::Rpc`].

use pd_core::{query, BuildOptions, DataStore};
use pd_data::{generate_logs, LogsSpec};
use pd_dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape};
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pd-dist-worker"))
}

fn rpc(deadline: Duration) -> Transport {
    Transport::Rpc(RpcConfig { worker_bin: Some(worker_bin()), deadline })
}

fn build_options() -> BuildOptions {
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    build
}

const QUERIES: [&str; 3] = [
    "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT country, SUM(latency) s, AVG(latency) a FROM logs GROUP BY country ORDER BY country ASC",
    "SELECT COUNT(*) FROM logs WHERE country = 'DE'",
];

#[test]
fn single_worker_process_answers_queries() {
    let table = generate_logs(&LogsSpec::scaled(600));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 1,
            replication: false,
            build,
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    for sql in QUERIES {
        let (expect, _) = query(&store, sql).unwrap();
        let outcome = cluster.query(sql).unwrap();
        assert_eq!(outcome.result, expect, "{sql}");
        assert_eq!(outcome.subquery_latencies.len(), 1);
        assert!(outcome.failovers.is_empty());
    }
}

#[test]
fn merge_servers_fold_subtrees_identically() {
    // 5 shards at fanout 2: two merge levels (5 → 3 → 2 frontier nodes),
    // exercising Node-child timeouts, report propagation and the
    // associative fold across three tree layers.
    let table = generate_logs(&LogsSpec::scaled(1_000));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 5,
            replication: false,
            build,
            tree: TreeShape { fanout: 2 },
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(cluster.shard_count(), 5);
    for sql in QUERIES {
        let (expect, _) = query(&store, sql).unwrap();
        let outcome = cluster.query(sql).unwrap();
        assert_eq!(outcome.result, expect, "{sql}");
        assert_eq!(
            outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
            outcome.stats.rows_total,
            "row accounting must balance across the tree: {sql}"
        );
        // Every shard's observation made it up through the merge servers.
        assert_eq!(outcome.subquery_latencies.len(), 5);
        assert!(
            outcome.subquery_latencies.iter().all(|d| *d > Duration::ZERO),
            "per-shard latencies are measured, not defaulted: {:?}",
            outcome.subquery_latencies
        );
    }
}

#[test]
fn queue_delays_are_measured_not_modeled() {
    // One worker process, two queries racing over *separate connections*:
    // the second request queues behind the first inside the worker's
    // single executor, so its *measured* queue delay must reflect the
    // first query's artificial service time. No seeded draw can produce
    // this number — only observation can.
    use pd_dist::rpc::{LoadRequest, QueryRequest, Request, Response, RpcClient};

    let dir = std::env::temp_dir().join(format!("pd-queue-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("w.sock");
    let mut worker =
        std::process::Command::new(worker_bin()).arg("--socket").arg(&socket).spawn().unwrap();

    let table = generate_logs(&LogsSpec::scaled(200));
    let mut setup = RpcClient::new(&socket);
    setup.connect_with_retry(Duration::from_secs(30)).unwrap();
    let load = Request::Load(Box::new(LoadRequest {
        shard: 0,
        schema: table.schema().clone(),
        rows: table.iter_rows().collect(),
        build: BuildOptions::basic(),
        threads: 1,
        cache_budget: 1 << 20,
    }));
    assert_eq!(setup.call(&load, Duration::from_secs(60)).unwrap(), Response::Ok);
    let delay = Request::Delay { micros: 250_000 };
    assert_eq!(setup.call(&delay, Duration::from_secs(10)).unwrap(), Response::Ok);

    let query = Request::Query(QueryRequest {
        sql: "SELECT COUNT(*) FROM logs".into(),
        deadline: Duration::from_secs(30),
        killed: Vec::new(),
    });
    let queue_delays: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let query = &query;
                let socket = &socket;
                scope.spawn(move || {
                    let mut client = RpcClient::new(socket);
                    match client.call(query, Duration::from_secs(30)).unwrap() {
                        Response::Answer(answer) => answer.reports[0].queue,
                        other => panic!("expected an answer, got {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let _ = worker.kill();
    let _ = worker.wait();
    let _ = std::fs::remove_dir_all(&dir);

    let max_queue = queue_delays.iter().max().copied().unwrap();
    assert!(
        max_queue >= Duration::from_millis(150),
        "one of two concurrent requests must have queued behind the other's \
         250 ms service time, got {queue_delays:?}"
    );
}

#[test]
fn cluster_surfaces_per_shard_queue_observations() {
    let table = generate_logs(&LogsSpec::scaled(400));
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 2,
            replication: false,
            build: build_options(),
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    let outcome = cluster.query(QUERIES[2]).unwrap();
    assert_eq!(outcome.queue_delays.len(), 2, "one measured queue delay per shard");
    assert_eq!(cluster.observed_queue_delays().len(), 2);
}

#[test]
fn rebuild_respawns_the_tree_with_new_data() {
    let table = generate_logs(&LogsSpec::scaled(400));
    let mut cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 2,
            replication: false,
            build: build_options(),
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    let sql = "SELECT COUNT(*) FROM logs";
    let before = cluster.query(sql).unwrap();
    let bigger = generate_logs(&LogsSpec::scaled(800));
    cluster.rebuild(&bigger).unwrap();
    let after = cluster.query(sql).unwrap();
    assert_eq!(after.stats.rows_total, 800);
    assert_ne!(before.result, after.result, "rebuilt tree serves the new data");
}
