//! End-to-end tests of the process-split computation tree: real
//! `pd-dist-worker` processes behind the RPC boundary, driven through
//! [`Cluster`] with [`Transport::Rpc`] — over Unix sockets and loopback
//! TCP, with and without frame compression, and with restriction-aware
//! subtree pruning.

use pd_common::{DataType, Row, Schema, Value};
use pd_core::{query, BuildOptions, DataStore};
use pd_data::{generate_logs, LogsSpec, Table};
use pd_dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape, WorkerAddr};
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pd-dist-worker"))
}

fn rpc(deadline: Duration) -> Transport {
    // Library defaults otherwise: unix sockets, compression on.
    Transport::Rpc(RpcConfig { worker_bin: Some(worker_bin()), deadline, ..Default::default() })
}

fn rpc_with(addr: WorkerAddr, compress: bool) -> Transport {
    Transport::Rpc(RpcConfig {
        worker_bin: Some(worker_bin()),
        deadline: Duration::from_secs(30),
        addr,
        compress,
    })
}

fn build_options() -> BuildOptions {
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    build
}

const QUERIES: [&str; 3] = [
    "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT country, SUM(latency) s, AVG(latency) a FROM logs GROUP BY country ORDER BY country ASC",
    "SELECT COUNT(*) FROM logs WHERE country = 'DE'",
];

#[test]
fn single_worker_process_answers_queries() {
    let table = generate_logs(&LogsSpec::scaled(600));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 1,
            replication: false,
            build,
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    for sql in QUERIES {
        let (expect, _) = query(&store, sql).unwrap();
        let outcome = cluster.query(sql).unwrap();
        assert_eq!(outcome.result, expect, "{sql}");
        assert_eq!(outcome.subquery_latencies.len(), 1);
        assert!(outcome.failovers.is_empty());
    }
}

#[test]
fn merge_servers_fold_subtrees_identically() {
    // 5 shards at fanout 2: two merge levels (5 → 3 → 2 frontier nodes),
    // exercising Node-child timeouts, report propagation and the
    // associative fold across three tree layers.
    let table = generate_logs(&LogsSpec::scaled(1_000));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 5,
            replication: false,
            build,
            tree: TreeShape { fanout: 2 },
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(cluster.shard_count(), 5);
    for sql in QUERIES {
        let (expect, _) = query(&store, sql).unwrap();
        let outcome = cluster.query(sql).unwrap();
        assert_eq!(outcome.result, expect, "{sql}");
        assert_eq!(
            outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
            outcome.stats.rows_total,
            "row accounting must balance across the tree: {sql}"
        );
        // Every shard's observation made it up through the merge servers.
        assert_eq!(outcome.subquery_latencies.len(), 5);
        assert!(
            outcome.subquery_latencies.iter().all(|d| *d > Duration::ZERO),
            "per-shard latencies are measured, not defaulted: {:?}",
            outcome.subquery_latencies
        );
    }
}

#[test]
fn tcp_loopback_tree_matches_unix_sockets() {
    // The same tree — merge servers included — over loopback TCP with
    // ephemeral announced ports, compressed and raw, must produce rows
    // bit-identical to the unix-socket tree and the single store.
    let table = generate_logs(&LogsSpec::scaled(800));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    for compress in [false, true] {
        let cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards: 3,
                replication: false,
                build: build.clone(),
                tree: TreeShape { fanout: 2 },
                transport: rpc_with(WorkerAddr::loopback(), compress),
                ..Default::default()
            },
        )
        .unwrap();
        for sql in QUERIES {
            let (expect, _) = query(&store, sql).unwrap();
            let outcome = cluster.query(sql).unwrap();
            assert_eq!(outcome.result, expect, "compress={compress}: {sql}");
        }
    }
}

#[test]
fn restriction_preskip_prunes_non_matching_subtrees() {
    // A table whose `bucket` column is perfectly correlated with row
    // position: contiguous sharding gives every shard exactly one bucket
    // value, so a one-bucket restriction can only match one shard — and
    // the metadata shipped at load time proves it. At fanout 2 (4 leaves →
    // 2 mixers → root) the query for bucket b3 must prune the whole
    // {b0, b1} mixer at the root *and* the b2 leaf inside the other mixer:
    // two edges never carry the query, yet the answer is bit-identical.
    let schema = Schema::of(&[("bucket", DataType::Str), ("n", DataType::Int)]);
    let mut table = Table::new(schema);
    for i in 0..400i64 {
        table.push_row(Row(vec![Value::from(format!("b{}", i / 100)), Value::Int(i)])).unwrap();
    }
    let build = BuildOptions::production(&["bucket"]);
    let store = DataStore::build(&table, &build).unwrap();
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 4,
            replication: false,
            build,
            tree: TreeShape { fanout: 2 },
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();

    let sql = "SELECT bucket, COUNT(*) c, SUM(n) s FROM t WHERE bucket = 'b3' GROUP BY bucket";
    let (expect, _) = query(&store, sql).unwrap();
    let outcome = cluster.query(sql).unwrap();
    assert_eq!(outcome.result, expect);
    assert_eq!(
        outcome.stats.subtrees_pruned, 2,
        "the b0/b1 mixer prunes at the root, the b2 leaf inside its mixer"
    );
    assert!(
        outcome.stats.rows_skipped >= 300,
        "three shards' rows are skipped without scanning: {:?}",
        outcome.stats
    );
    assert_eq!(
        outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
        outcome.stats.rows_total,
        "pruned shards keep the accounting balanced"
    );
    assert_eq!(outcome.subquery_latencies.len(), 4);

    // A restriction matching nothing anywhere prunes every edge at the
    // root — and still returns the exact empty/global-aggregate shape.
    let sql = "SELECT COUNT(*) FROM t WHERE bucket = 'nope'";
    let (expect, _) = query(&store, sql).unwrap();
    let outcome = cluster.query(sql).unwrap();
    assert_eq!(outcome.result, expect);
    assert_eq!(outcome.stats.subtrees_pruned, 2, "both frontier edges prune at the root");
    assert_eq!(outcome.stats.rows_skipped, 400);
    assert_eq!(outcome.stats.rows_scanned, 0);

    // An unrestricted query prunes nothing.
    let outcome = cluster.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(outcome.stats.subtrees_pruned, 0);
    assert_eq!(outcome.stats.rows_scanned + outcome.stats.rows_cached, 400);
}

#[test]
fn queue_delays_are_measured_not_modeled() {
    // One worker process, two queries racing over *separate connections*:
    // the second request queues behind the first inside the worker's
    // single executor, so its *measured* queue delay must reflect the
    // first query's artificial service time. No seeded draw can produce
    // this number — only observation can.
    use pd_dist::rpc::{Addr, LoadRequest, QueryRequest, Request, Response, RpcClient};
    use pd_dist::ReapGuard;
    use pd_sql::{analyze, parse_query};

    let dir = std::env::temp_dir().join(format!("pd-queue-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("w.sock");
    // The raw spawn sits in a ReapGuard: if any assertion below panics,
    // unwinding kills and reaps the worker instead of leaking it into
    // later suites.
    let worker = ReapGuard::new(
        std::process::Command::new(worker_bin()).arg("--socket").arg(&socket).spawn().unwrap(),
    );
    let addr = Addr::Unix(socket);

    let table = generate_logs(&LogsSpec::scaled(200));
    let mut setup = RpcClient::new(addr.clone(), false);
    setup.connect_with_retry(Duration::from_secs(30)).unwrap();
    let load = Request::Load(Box::new(LoadRequest {
        shard: 0,
        schema: table.schema().clone(),
        rows: table.iter_rows().collect(),
        build: BuildOptions::basic(),
        threads: 1,
        cache_budget: 1 << 20,
    }));
    assert!(matches!(setup.call(&load, Duration::from_secs(60)).unwrap(), Response::Loaded(_)));
    let delay = Request::Delay { micros: 250_000 };
    assert_eq!(setup.call(&delay, Duration::from_secs(10)).unwrap(), Response::Ok);

    let analyzed = analyze(&parse_query("SELECT COUNT(*) FROM logs").unwrap()).unwrap();
    let query = Request::Query(Box::new(QueryRequest {
        query: analyzed,
        deadline: Duration::from_secs(30),
        killed: Vec::new(),
    }));
    let queue_delays: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let query = &query;
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = RpcClient::new(addr, false);
                    match client.call(query, Duration::from_secs(30)).unwrap() {
                        Response::Answer(answer) => answer.reports[0].queue,
                        other => panic!("expected an answer, got {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(worker); // kill + reap
    let _ = std::fs::remove_dir_all(&dir);

    let max_queue = queue_delays.iter().max().copied().unwrap();
    assert!(
        max_queue >= Duration::from_millis(150),
        "one of two concurrent requests must have queued behind the other's \
         250 ms service time, got {queue_delays:?}"
    );
}

#[test]
fn cluster_surfaces_per_shard_queue_observations() {
    let table = generate_logs(&LogsSpec::scaled(400));
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 2,
            replication: false,
            build: build_options(),
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    let outcome = cluster.query(QUERIES[2]).unwrap();
    assert_eq!(outcome.queue_delays.len(), 2, "one measured queue delay per shard");
    assert_eq!(cluster.observed_queue_delays().len(), 2);
}

#[test]
fn rebuild_respawns_the_tree_with_new_data() {
    let table = generate_logs(&LogsSpec::scaled(400));
    let mut cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 2,
            replication: false,
            build: build_options(),
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    let sql = "SELECT COUNT(*) FROM logs";
    let before = cluster.query(sql).unwrap();
    let bigger = generate_logs(&LogsSpec::scaled(800));
    cluster.rebuild(&bigger).unwrap();
    let after = cluster.query(sql).unwrap();
    assert_eq!(after.stats.rows_total, 800);
    assert_ne!(before.result, after.result, "rebuilt tree serves the new data");
}
