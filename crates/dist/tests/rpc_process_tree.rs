//! End-to-end tests of the process-split computation tree: real
//! `pd-dist-worker` processes behind the RPC boundary, driven through
//! [`Cluster`] with [`Transport::Rpc`] — over Unix sockets and loopback
//! TCP, with and without frame compression, and with restriction-aware
//! subtree pruning.

use pd_common::{DataType, Row, Schema, Value};
use pd_core::{query, BuildOptions, DataStore};
use pd_data::{generate_logs, LogsSpec, Table};
use pd_dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape, WorkerAddr};
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pd-dist-worker"))
}

fn rpc(budget: Duration) -> Transport {
    // Library defaults otherwise: unix sockets, compression on.
    Transport::Rpc(RpcConfig { worker_bin: Some(worker_bin()), budget, ..Default::default() })
}

fn rpc_with(addr: WorkerAddr, compress: bool) -> Transport {
    Transport::Rpc(RpcConfig {
        worker_bin: Some(worker_bin()),
        budget: Duration::from_secs(30),
        addr,
        compress,
    })
}

fn build_options() -> BuildOptions {
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    build
}

const QUERIES: [&str; 3] = [
    "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT country, SUM(latency) s, AVG(latency) a FROM logs GROUP BY country ORDER BY country ASC",
    "SELECT COUNT(*) FROM logs WHERE country = 'DE'",
];

#[test]
fn single_worker_process_answers_queries() {
    let table = generate_logs(&LogsSpec::scaled(600));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 1,
            replication: false,
            build,
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    for sql in QUERIES {
        let (expect, _) = query(&store, sql).unwrap();
        let outcome = cluster.query(sql).unwrap();
        assert_eq!(outcome.result, expect, "{sql}");
        assert_eq!(outcome.subquery_latencies.len(), 1);
        assert!(outcome.failovers.is_empty());
    }
}

#[test]
fn merge_servers_fold_subtrees_identically() {
    // 5 shards at fanout 2: two merge levels (5 → 3 → 2 frontier nodes),
    // exercising Node-child timeouts, report propagation and the
    // associative fold across three tree layers.
    let table = generate_logs(&LogsSpec::scaled(1_000));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 5,
            replication: false,
            build,
            tree: TreeShape { fanout: 2 },
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(cluster.shard_count(), 5);
    for sql in QUERIES {
        let (expect, _) = query(&store, sql).unwrap();
        let outcome = cluster.query(sql).unwrap();
        assert_eq!(outcome.result, expect, "{sql}");
        assert_eq!(
            outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
            outcome.stats.rows_total,
            "row accounting must balance across the tree: {sql}"
        );
        // Every shard's observation made it up through the merge servers.
        assert_eq!(outcome.subquery_latencies.len(), 5);
        assert!(
            outcome.subquery_latencies.iter().all(|d| *d > Duration::ZERO),
            "per-shard latencies are measured, not defaulted: {:?}",
            outcome.subquery_latencies
        );
    }
}

#[test]
fn tcp_loopback_tree_matches_unix_sockets() {
    // The same tree — merge servers included — over loopback TCP with
    // ephemeral announced ports, compressed and raw, must produce rows
    // bit-identical to the unix-socket tree and the single store.
    let table = generate_logs(&LogsSpec::scaled(800));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    for compress in [false, true] {
        let cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards: 3,
                replication: false,
                build: build.clone(),
                tree: TreeShape { fanout: 2 },
                transport: rpc_with(WorkerAddr::loopback(), compress),
                ..Default::default()
            },
        )
        .unwrap();
        for sql in QUERIES {
            let (expect, _) = query(&store, sql).unwrap();
            let outcome = cluster.query(sql).unwrap();
            assert_eq!(outcome.result, expect, "compress={compress}: {sql}");
        }
    }
}

#[test]
fn restriction_preskip_prunes_non_matching_subtrees() {
    // A table whose `bucket` column is perfectly correlated with row
    // position: contiguous sharding gives every shard exactly one bucket
    // value, so a one-bucket restriction can only match one shard — and
    // the metadata shipped at load time proves it. At fanout 2 (4 leaves →
    // 2 mixers → root) the query for bucket b3 must prune the whole
    // {b0, b1} mixer at the root *and* the b2 leaf inside the other mixer:
    // two edges never carry the query, yet the answer is bit-identical.
    let schema = Schema::of(&[("bucket", DataType::Str), ("n", DataType::Int)]);
    let mut table = Table::new(schema);
    for i in 0..400i64 {
        table.push_row(Row(vec![Value::from(format!("b{}", i / 100)), Value::Int(i)])).unwrap();
    }
    let build = BuildOptions::production(&["bucket"]);
    let store = DataStore::build(&table, &build).unwrap();
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 4,
            replication: false,
            build,
            tree: TreeShape { fanout: 2 },
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();

    let sql = "SELECT bucket, COUNT(*) c, SUM(n) s FROM t WHERE bucket = 'b3' GROUP BY bucket";
    let (expect, _) = query(&store, sql).unwrap();
    let outcome = cluster.query(sql).unwrap();
    assert_eq!(outcome.result, expect);
    assert_eq!(
        outcome.stats.subtrees_pruned, 2,
        "the b0/b1 mixer prunes at the root, the b2 leaf inside its mixer"
    );
    assert!(
        outcome.stats.rows_skipped >= 300,
        "three shards' rows are skipped without scanning: {:?}",
        outcome.stats
    );
    assert_eq!(
        outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
        outcome.stats.rows_total,
        "pruned shards keep the accounting balanced"
    );
    assert_eq!(outcome.subquery_latencies.len(), 4);

    // A restriction matching nothing anywhere prunes every edge at the
    // root — and still returns the exact empty/global-aggregate shape.
    let sql = "SELECT COUNT(*) FROM t WHERE bucket = 'nope'";
    let (expect, _) = query(&store, sql).unwrap();
    let outcome = cluster.query(sql).unwrap();
    assert_eq!(outcome.result, expect);
    assert_eq!(outcome.stats.subtrees_pruned, 2, "both frontier edges prune at the root");
    assert_eq!(outcome.stats.rows_skipped, 400);
    assert_eq!(outcome.stats.rows_scanned, 0);

    // An unrestricted query prunes nothing.
    let outcome = cluster.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(outcome.stats.subtrees_pruned, 0);
    assert_eq!(outcome.stats.rows_scanned + outcome.stats.rows_cached, 400);
}

#[test]
fn chunk_granular_pruning_kills_edges_the_shard_envelope_cannot() {
    // The `v` strings fall in two lexicographic regions — v0000..v0029
    // and v1000..v1029 — and every shard sees all 60 of them, so the
    // shard envelope spans the gap and shard-granular pruning is blind to
    // a query inside it. The column is a *string* under a production
    // (trie-dictionary) build, so the leaf-local skip analysis is blind
    // too: tries cannot rank range bounds, every chunk reads Opaque and
    // scans. But each value repeats 10× per shard and chunks cap at 50
    // rows, so chunk boundaries align to value runs and every chunk of
    // the value-partitioned store carries a tight value-space min/max —
    // the shipped zone maps prove the gap query empty chunk by chunk.
    // With chunk pruning on, the whole tree prunes at the root with
    // `chunks_pruned_remote` annotating every chunk beneath the dead
    // edges; off, the same query must scan every row.
    let all: Vec<String> = (0..30)
        .map(|i| format!("v{i:04}"))
        .chain((1000..1030).map(|i| format!("v{i:04}")))
        .collect();
    let schema = Schema::of(&[("v", DataType::Str)]);
    let mut table = Table::new(schema);
    for i in 0..2400usize {
        table.push_row(Row(vec![Value::from(all[i % all.len()].as_str())])).unwrap();
    }
    let mut build = BuildOptions::production(&["v"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 50;
    }
    let store = DataStore::build(&table, &build).unwrap();

    let dead_sql = "SELECT COUNT(*) c FROM t WHERE v > 'v0029' AND v < 'v1000'";
    let half_sql = "SELECT COUNT(*) c FROM t WHERE v < 'v1000'";

    let cluster_with = |chunk_pruning: bool| {
        Cluster::build(
            &table,
            &ClusterConfig {
                shards: 4,
                replication: false,
                build: build.clone(),
                tree: TreeShape { fanout: 2 },
                transport: rpc(Duration::from_secs(30)),
                chunk_pruning,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let on = cluster_with(true);
    let off = cluster_with(false);

    // The provably-empty query: chunk verdicts prune every edge remotely.
    let (expect, _) = query(&store, dead_sql).unwrap();
    let pruned = on.query(dead_sql).unwrap();
    assert_eq!(pruned.result, expect);
    assert!(pruned.stats.subtrees_pruned > 0, "dead edges must prune: {:?}", pruned.stats);
    assert_eq!(pruned.stats.rows_scanned, 0, "no frame carries a provably-empty query");
    assert_eq!(pruned.stats.rows_skipped, pruned.stats.rows_total);
    assert!(pruned.stats.chunks_pruned_remote > 0);
    assert_eq!(
        pruned.stats.chunks_pruned_remote, pruned.stats.chunks_total,
        "every chunk beneath the pruned edges is annotated: {:?}",
        pruned.stats
    );
    assert_eq!(
        pruned.stats.chunks_skipped + pruned.stats.chunks_cached + pruned.stats.chunks_scanned,
        pruned.stats.chunks_total,
        "the remote annotation stays outside the skip/cache/scan balance"
    );

    // The same query with chunk pruning off: the shard envelope straddles
    // the gap and the trie dictionaries cannot rank the bounds, so every
    // row scans — to the same bit-identical (empty) result.
    let scanned = off.query(dead_sql).unwrap();
    assert_eq!(scanned.result, expect);
    assert_eq!(scanned.stats.subtrees_pruned, 0, "{:?}", scanned.stats);
    assert_eq!(scanned.stats.chunks_pruned_remote, 0);
    assert!(scanned.stats.rows_scanned > 0, "shard-only pruning must fall back to scanning");

    // The half-dead query: no edge dies (every shard keeps live low-region
    // chunks), but the shipped verdicts seed each leaf's scan — the
    // high-region chunks skip without the leaf re-deriving anything, so
    // strictly fewer rows are scanned for a bit-identical result.
    let (expect, _) = query(&store, half_sql).unwrap();
    let seeded = on.query(half_sql).unwrap();
    let unseeded = off.query(half_sql).unwrap();
    assert_eq!(seeded.result, expect);
    assert_eq!(unseeded.result, expect);
    assert_eq!(seeded.stats.subtrees_pruned, 0);
    assert!(
        seeded.stats.rows_scanned < unseeded.stats.rows_scanned,
        "seeded chunk verdicts must cut the scan: {} vs {}",
        seeded.stats.rows_scanned,
        unseeded.stats.rows_scanned
    );
    assert_eq!(
        seeded.stats.rows_skipped + seeded.stats.rows_cached + seeded.stats.rows_scanned,
        seeded.stats.rows_total,
        "seeded skips land in the ordinary accounting"
    );
}

#[test]
fn queue_delays_are_measured_not_modeled() {
    // One worker process, requests racing over *separate connections*. Two
    // claims, both only observation can make:
    //
    // 1. a query that arrives while the single executor is busy with
    //    *real* work (here: a heavy shard import) reports a queue delay
    //    reflecting that genuine service time;
    // 2. the artificial `Delay` knob is service time of the delayed query
    //    alone — the caller sees a late answer, but requests queued behind
    //    it do NOT report inflated queue delays, because the sleep happens
    //    off the executor.
    use pd_dist::rpc::{Addr, LoadRequest, QueryRequest, Request, Response, RpcClient};
    use pd_dist::ReapGuard;
    use pd_sql::{analyze, parse_query};

    let dir = std::env::temp_dir().join(format!("pd-queue-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("w.sock");
    // The raw spawn sits in a ReapGuard: if any assertion below panics,
    // unwinding kills and reaps the worker instead of leaking it into
    // later suites.
    let worker = ReapGuard::new(
        std::process::Command::new(worker_bin()).arg("--socket").arg(&socket).spawn().unwrap(),
    );
    let addr = Addr::Unix(socket);

    let load_request = |table: &Table, build: BuildOptions| {
        Request::Load(Box::new(LoadRequest {
            shard: 0,
            schema: table.schema().clone(),
            rows: table.iter_rows().collect(),
            build,
            threads: 1,
            cache_budget: 1 << 20,
            cache_entries: 0,
            epoch: 1,
            name: "l0p".into(),
        }))
    };
    let table = generate_logs(&LogsSpec::scaled(200));
    let mut setup = RpcClient::new(addr.clone(), false);
    setup.connect_with_retry(Duration::from_secs(30)).unwrap();
    let load = load_request(&table, BuildOptions::basic());
    assert!(matches!(setup.call(&load, Duration::from_secs(60)).unwrap(), Response::Loaded(_)));

    let analyzed = analyze(&parse_query("SELECT COUNT(*) FROM logs").unwrap()).unwrap();
    let query = Request::Query(Box::new(QueryRequest {
        query: analyzed,
        budget: Duration::from_secs(30),
        hedge_micros: 0,
        killed: Vec::new(),
        epoch: 1,
        chaos: Vec::new(),
        chunk_pruning: true,
    }));
    let ask = |addr: Addr| -> (Duration, Duration) {
        let started = std::time::Instant::now();
        let mut client = RpcClient::new(addr, false);
        match client.call(&query, Duration::from_secs(60)).unwrap() {
            Response::Answer(answer) => (answer.reports[0].queue, started.elapsed()),
            other => panic!("expected an answer, got {other:?}"),
        }
    };

    // Claim 2 first (the store is still small): with a 250 ms artificial
    // delay, two concurrent queries each answer late, yet neither reports
    // the other's sleep as queueing.
    let delay = Duration::from_millis(250);
    let knob = Request::Delay { micros: delay.as_micros() as u64 };
    assert_eq!(setup.call(&knob, Duration::from_secs(10)).unwrap(), Response::Ok);
    let observed: Vec<(Duration, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2).map(|_| scope.spawn(|| ask(addr.clone()))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (queue, elapsed) in &observed {
        assert!(
            *elapsed >= delay,
            "the delayed worker must answer late from the caller's view: {observed:?}"
        );
        assert!(
            *queue < Duration::from_millis(150),
            "artificial delay is service time of its own query only — it must not \
             inflate the measured queue delay of the request behind it: {observed:?}"
        );
    }
    let knob_off = Request::Delay { micros: 0 };
    assert_eq!(setup.call(&knob_off, Duration::from_secs(10)).unwrap(), Response::Ok);

    // Claim 1: a heavy re-import (tens of thousands of rows through the
    // full production build pipeline) occupies the executor for a long
    // stretch of real service time. Probe queries are fired continuously
    // while it ships and runs: whichever probe lands behind the import in
    // the executor queue must *measure* that wait. (Probes before the
    // import is even enqueued see an idle executor — hence the polling,
    // not a single staggered shot.)
    let big = generate_logs(&LogsSpec::scaled(30_000));
    let heavy = load_request(&big, BuildOptions::production(&["country", "table_name"]));
    let queued = std::thread::scope(|scope| {
        let loader = scope.spawn(|| {
            let mut client = RpcClient::new(addr.clone(), false);
            assert!(matches!(
                client.call(&heavy, Duration::from_secs(120)).unwrap(),
                Response::Loaded(_)
            ));
        });
        let mut best = Duration::ZERO;
        for _ in 0..2_000 {
            let (queue, _) = ask(addr.clone());
            best = best.max(queue);
            if best >= Duration::from_millis(5) {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        loader.join().unwrap();
        best
    });
    drop(worker); // kill + reap
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        queued >= Duration::from_millis(5),
        "a query behind a heavy import must report real, measured queueing, got {queued:?}"
    );
}

#[test]
fn cluster_surfaces_per_shard_queue_observations() {
    let table = generate_logs(&LogsSpec::scaled(400));
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 2,
            replication: false,
            build: build_options(),
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    let outcome = cluster.query(QUERIES[2]).unwrap();
    assert_eq!(outcome.queue_delays.len(), 2, "one measured queue delay per shard");
    assert_eq!(cluster.observed_queue_delays().len(), 2);
}

#[test]
fn role_reassignment_replaces_the_previous_role() {
    // The regression: `Load` after `Attach` (and vice versa) used to leave
    // *both* role halves populated, and queries preferred the leaf — so a
    // worker repurposed into a merge server silently kept answering from
    // its shadowed local store.
    use pd_dist::rpc::{
        Addr, AttachRequest, ChildSpec, LoadRequest, QueryRequest, Request, Response, RpcClient,
    };
    use pd_dist::ReapGuard;
    use pd_sql::{analyze, parse_query};

    let dir = std::env::temp_dir().join(format!("pd-role-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spawn = |name: &str| -> (ReapGuard, Addr) {
        let socket = dir.join(format!("{name}.sock"));
        let guard = ReapGuard::new(
            std::process::Command::new(worker_bin()).arg("--socket").arg(&socket).spawn().unwrap(),
        );
        (guard, Addr::Unix(socket))
    };
    let (w1, addr1) = spawn("w1");
    let (w2, addr2) = spawn("w2");

    let load = |shard: u64, rows: usize| {
        let table = generate_logs(&LogsSpec::scaled(rows));
        Request::Load(Box::new(LoadRequest {
            shard,
            schema: table.schema().clone(),
            rows: table.iter_rows().collect(),
            build: BuildOptions::basic(),
            threads: 1,
            cache_budget: 1 << 20,
            cache_entries: 8,
            epoch: 1,
            name: format!("l{shard}p"),
        }))
    };
    let mut c1 = RpcClient::new(addr1, false);
    c1.connect_with_retry(Duration::from_secs(30)).unwrap();
    let mut c2 = RpcClient::new(addr2.clone(), false);
    c2.connect_with_retry(Duration::from_secs(30)).unwrap();

    // w2: a 200-row leaf for shard 7. w1: first a 100-row leaf for shard 0.
    let meta2 = match c2.call(&load(7, 200), Duration::from_secs(60)).unwrap() {
        Response::Loaded(meta) => *meta,
        other => panic!("expected Loaded, got {other:?}"),
    };
    assert!(matches!(
        c1.call(&load(0, 100), Duration::from_secs(60)).unwrap(),
        Response::Loaded(_)
    ));

    let query = Request::Query(Box::new(QueryRequest {
        query: analyze(&parse_query("SELECT COUNT(*) FROM logs").unwrap()).unwrap(),
        budget: Duration::from_secs(30),
        hedge_micros: 0,
        killed: Vec::new(),
        epoch: 1,
        chaos: Vec::new(),
        chunk_pruning: true,
    }));
    let ask = |client: &mut RpcClient| match client.call(&query, Duration::from_secs(30)).unwrap() {
        Response::Answer(answer) => answer,
        other => panic!("expected an answer, got {other:?}"),
    };
    let as_leaf = ask(&mut c1);
    assert_eq!(as_leaf.stats.rows_total, 100);
    assert_eq!(as_leaf.reports[0].shard, 0);

    // Repurpose w1 into a merge server over w2: its answers must now come
    // from the subtree, not the shadowed 100-row leaf.
    let attach = Request::Attach(AttachRequest {
        children: vec![ChildSpec::Leaf { shard: 7, primary: addr2, replica: None, meta: meta2 }],
        compress: false,
        cache_entries: 8,
        epoch: 1,
        name: "m1_0".into(),
    });
    assert_eq!(c1.call(&attach, Duration::from_secs(30)).unwrap(), Response::Ok);
    let as_mixer = ask(&mut c1);
    assert_eq!(
        as_mixer.stats.rows_total, 200,
        "a repurposed merge server must answer from its subtree, not a shadowed leaf"
    );
    assert_eq!(as_mixer.reports.len(), 1);
    assert_eq!(as_mixer.reports[0].shard, 7, "the report names the child's shard");
    assert!(!as_mixer.reports[0].cache_hit, "the old leaf-role cache must be gone");

    // And back: a fresh `Load` must retire the child wiring again.
    assert!(matches!(
        c1.call(&load(3, 150), Duration::from_secs(60)).unwrap(),
        Response::Loaded(_)
    ));
    let as_leaf_again = ask(&mut c1);
    assert_eq!(as_leaf_again.stats.rows_total, 150, "re-loaded leaf serves its own new store");
    assert_eq!(as_leaf_again.reports[0].shard, 3);
    assert!(!as_leaf_again.reports[0].cache_hit, "the mixer-role cache must be gone");

    drop(w1);
    drop(w2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_tcp_announces_do_not_collide() {
    // The regression: announce temp paths were derived with
    // `with_extension("tmp")`, so announce files differing only in
    // extension (`w.1`, `w.2`) raced on one shared `w.tmp` — a worker
    // could crash on the missing temp file or publish its sibling's
    // address. Both workers must come up and announce distinct addresses.
    use pd_dist::rpc::{Addr, Request, Response, RpcClient};
    use pd_dist::ReapGuard;

    let dir = std::env::temp_dir().join(format!("pd-announce-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let announce = |n: usize| dir.join(format!("w.{n}"));
    let workers: Vec<ReapGuard> = (1..=2)
        .map(|n| {
            ReapGuard::new(
                std::process::Command::new(worker_bin())
                    .arg("--listen")
                    .arg("tcp:127.0.0.1:0")
                    .arg("--announce")
                    .arg(announce(n))
                    .spawn()
                    .unwrap(),
            )
        })
        .collect();
    let wait_for = |path: std::path::PathBuf| -> Addr {
        let started = std::time::Instant::now();
        loop {
            match std::fs::read_to_string(&path) {
                Ok(contents) if !contents.trim().is_empty() => {
                    return Addr::parse(contents.trim()).unwrap()
                }
                _ if started.elapsed() > Duration::from_secs(30) => {
                    panic!("worker never announced at {}", path.display())
                }
                _ => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    };
    let a = wait_for(announce(1));
    let b = wait_for(announce(2));
    assert_ne!(a, b, "two workers must announce two distinct addresses");
    for addr in [a, b] {
        let mut client = RpcClient::new(addr, false);
        client.connect_with_retry(Duration::from_secs(30)).unwrap();
        assert_eq!(client.call(&Request::Ping, Duration::from_secs(10)).unwrap(), Response::Ok);
    }
    drop(workers);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_streams_deltas_into_the_live_tree() {
    // The incremental-rebuild path over real worker processes: a delta
    // append must (1) ship strictly fewer bytes than the base import, (2)
    // leave every answer bit-identical to a single store over the full
    // data — across merge levels, with chunk pruning live on the
    // re-derived metas — and (3) reach the replicas, proven by forcing a
    // permanent primary failover onto one.
    let table = generate_logs(&LogsSpec::scaled(1_200));
    let slice = |lo: usize, hi: usize| {
        let rows: Vec<usize> = (lo..hi).collect();
        table.select_rows(&rows)
    };
    let mut cluster = Cluster::build(
        &slice(0, 1_000),
        &ClusterConfig {
            shards: 3,
            replication: true,
            build: build_options(),
            tree: TreeShape { fanout: 2 },
            transport: rpc(Duration::from_secs(30)),
            // Shard 0's primary is dead for every query: each answer below
            // must come from its replica, which therefore must have
            // absorbed the appends too.
            failures: pd_dist::FailureModel { kill_primaries: vec![0], ..Default::default() },
            ..Default::default()
        },
    )
    .unwrap();
    let base_bytes = cluster.shipped_bytes();
    assert!(base_bytes > 0, "the base import crossed the wire");
    let before = cluster.query(QUERIES[0]).unwrap();
    assert!(before.failovers.contains(&0), "shard 0 answers from its replica");

    let outcome = cluster.append(&slice(1_000, 1_100)).unwrap();
    assert_eq!(outcome.rows, 100);
    assert!(outcome.bytes_shipped > 0, "rpc appends are measured");
    assert!(
        outcome.bytes_shipped < base_bytes,
        "a 10% delta must ship fewer bytes than the base import: {} vs {base_bytes}",
        outcome.bytes_shipped
    );
    assert_eq!(cluster.shipped_bytes(), base_bytes + outcome.bytes_shipped);
    let second = cluster.append(&slice(1_100, 1_200)).unwrap();
    assert_eq!(second.rows, 100);

    let store = DataStore::build(&slice(0, 1_200), &BuildOptions::basic()).unwrap();
    for sql in QUERIES {
        let (expect, _) = query(&store, sql).unwrap();
        let outcome = cluster.query(sql).unwrap();
        assert_eq!(outcome.result, expect, "{sql}");
        assert_eq!(outcome.stats.rows_total, 1_200, "appended rows are accounted: {sql}");
        assert!(outcome.failovers.contains(&0), "the replica keeps serving: {sql}");
    }
    assert_ne!(
        cluster.query(QUERIES[0]).unwrap().result,
        before.result,
        "worker caches must not serve pre-append partials across the epoch bump"
    );
}

#[test]
fn rebuild_respawns_the_tree_with_new_data() {
    let table = generate_logs(&LogsSpec::scaled(400));
    let mut cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 2,
            replication: false,
            build: build_options(),
            transport: rpc(Duration::from_secs(30)),
            ..Default::default()
        },
    )
    .unwrap();
    let sql = "SELECT COUNT(*) FROM logs";
    let before = cluster.query(sql).unwrap();
    let bigger = generate_logs(&LogsSpec::scaled(800));
    cluster.rebuild(&bigger).unwrap();
    let after = cluster.query(sql).unwrap();
    assert_eq!(after.stats.rows_total, 800);
    assert_ne!(before.result, after.result, "rebuilt tree serves the new data");
}
