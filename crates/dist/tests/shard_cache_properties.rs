//! Seeded-PRNG property tests for the shard-level result cache:
//!
//! 1. re-issuing an identical query hits every shard's cached partial and
//!    returns bit-identical results;
//! 2. a table rebuild invalidates the cache (no stale answers);
//! 3. capacity eviction can change `ScanStats`, never results.

use pd_common::rng::Rng;
use pd_common::{DataType, Row, Schema, Value};
use pd_core::BuildOptions;
use pd_data::Table;
use pd_dist::{Cluster, ClusterConfig};

/// A random table shaped like the equivalence-suite tables: two string
/// dimensions, an int and a float measure.
fn random_table(rng: &mut Rng, rows: usize) -> Table {
    let schema = Schema::of(&[
        ("k", DataType::Str),
        ("g", DataType::Str),
        ("n", DataType::Int),
        ("x", DataType::Float),
    ]);
    let mut table = Table::new(schema);
    for _ in 0..rows {
        table
            .push_row(Row(vec![
                Value::from(["red", "green", "blue", "grey"][rng.range_usize(0, 4)]),
                Value::from(format!("g{:02}", rng.range_usize(0, 10))),
                Value::Int(rng.range_i64_inclusive(-40, 40)),
                Value::Float(rng.range_i64_inclusive(-8, 8) as f64 * 0.25),
            ]))
            .unwrap();
    }
    table
}

/// A random drill-down-shaped query over that schema.
fn random_query(rng: &mut Rng) -> String {
    let key = *rng.pick(&["k", "g"]);
    let agg = *rng.pick(&[
        "COUNT(*) as c",
        "COUNT(*) as c, SUM(n) as s",
        "COUNT(*) as c, SUM(x) as s",
        "COUNT(*) as c, MIN(n) as mn, MAX(n) as mx",
    ]);
    let filter = match rng.range_usize(0, 4) {
        0 => String::new(),
        1 => " WHERE k = 'red'".to_owned(),
        2 => format!(" WHERE g = 'g{:02}'", rng.range_usize(0, 10)),
        _ => " WHERE n > 0".to_owned(),
    };
    format!("SELECT {key}, {agg} FROM data{filter} GROUP BY {key} ORDER BY c DESC LIMIT 10")
}

fn cluster(table: &Table, shards: usize, shard_cache: usize) -> Cluster {
    Cluster::build(
        table,
        &ClusterConfig { shards, shard_cache, build: BuildOptions::basic(), ..Default::default() },
    )
    .unwrap()
}

#[test]
fn identical_queries_hit_every_shard_partial() {
    let mut rng = Rng::seed_from_u64(0x05ca_1e01);
    for case in 0..12 {
        let rows = rng.range_usize(40, 200);
        let table = random_table(&mut rng, rows);
        let shards = rng.range_usize(1, 5);
        let cluster = cluster(&table, shards, 64);
        let sql = random_query(&mut rng);
        let cold = cluster.query(&sql).unwrap();
        assert_eq!(cold.shard_cache_hits, 0, "case {case}: first execution computes");
        for repeat in 0..3 {
            let warm = cluster.query(&sql).unwrap();
            assert_eq!(
                warm.shard_cache_hits,
                cluster.shard_count(),
                "case {case} repeat {repeat}: every shard hits"
            );
            assert_eq!(warm.result, cold.result, "case {case}: hits are bit-identical");
            assert_eq!(warm.stats.rows_cached, warm.stats.rows_total);
            assert_eq!(warm.stats.disk_bytes, 0, "cached partials touch no modeled disk");
        }
        let (hits, misses) = cluster.shard_cache_stats();
        assert_eq!(hits, 3 * cluster.shard_count() as u64, "case {case}");
        assert_eq!(misses, cluster.shard_count() as u64, "case {case}");
    }
}

#[test]
fn table_rebuild_invalidates_cached_partials() {
    let mut rng = Rng::seed_from_u64(0x05ca_1e02);
    for case in 0..8 {
        let before = random_table(&mut rng, 120);
        let after = random_table(&mut rng, 97); // different data AND row count
        let mut cluster = cluster(&before, 3, 64);
        let sql = "SELECT k, COUNT(*) as c FROM data GROUP BY k ORDER BY c DESC";
        let old = cluster.query(sql).unwrap();
        assert_eq!(cluster.query(sql).unwrap().shard_cache_hits, 3, "warm before rebuild");

        cluster.rebuild(&after).unwrap();
        let fresh = cluster.query(sql).unwrap();
        assert_eq!(fresh.shard_cache_hits, 0, "case {case}: rebuild must invalidate");
        assert_eq!(fresh.stats.rows_total, 97, "stats reflect the new table");
        // The reference answer on a never-cached cluster over the new data.
        let reference = self::cluster(&after, 3, 0).query(sql).unwrap();
        assert_eq!(fresh.result, reference.result, "case {case}: no stale partials");
        // Row counts differ (120 vs 97), so total counts must differ too:
        // the old cached answer cannot leak through.
        let total = |r: &pd_core::QueryResult| -> i64 {
            r.rows.iter().map(|row| row.0[1].as_int().unwrap()).sum()
        };
        assert_ne!(total(&fresh.result), total(&old.result), "case {case}");
    }
}

#[test]
fn capacity_eviction_changes_stats_never_results() {
    let mut rng = Rng::seed_from_u64(0x05ca_1e03);
    for case in 0..6 {
        let table = random_table(&mut rng, 150);
        let shards = 3;
        // Three clusters over the same data: roomy cache, starved cache
        // (2 entries < one query's 3 shard partials — permanent thrash),
        // and no cache at all.
        let roomy = cluster(&table, shards, 256);
        let starved = cluster(&table, shards, 2);
        let none = cluster(&table, shards, 0);
        // A query mix with repeats, so the roomy cache actually hits.
        let queries: Vec<String> = (0..6).map(|_| random_query(&mut rng)).collect();
        let mut order: Vec<usize> = (0..18).map(|i| i % queries.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.range_usize(0, i + 1));
        }
        for (step, &q) in order.iter().enumerate() {
            let sql = &queries[q];
            let a = roomy.query(sql).unwrap();
            let b = starved.query(sql).unwrap();
            let c = none.query(sql).unwrap();
            assert_eq!(a.result, b.result, "case {case} step {step}: eviction changed a result");
            assert_eq!(a.result, c.result, "case {case} step {step}: caching changed a result");
            for outcome in [&a, &b, &c] {
                assert_eq!(
                    outcome.stats.rows_skipped
                        + outcome.stats.rows_cached
                        + outcome.stats.rows_scanned,
                    outcome.stats.rows_total,
                    "case {case} step {step}"
                );
            }
        }
        let (roomy_hits, _) = roomy.shard_cache_stats();
        let (starved_hits, _) = starved.shard_cache_stats();
        assert!(roomy_hits > 0, "case {case}: the roomy cache must see repeats");
        assert!(
            starved_hits <= roomy_hits,
            "case {case}: starving the cache cannot add hits ({starved_hits} > {roomy_hits})"
        );
        assert_eq!(none.shard_cache_stats(), (0, 0));
    }
}
