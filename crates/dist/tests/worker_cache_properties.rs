//! Worker-level mirror of `shard_cache_properties.rs`, over a *real*
//! spawned process tree: every node of the §4 computation tree owns a
//! result cache, so repeated drill-down subqueries over RPC answer from
//! the nearest cache with zero child hops. The properties:
//!
//! 1. re-issuing an identical query hits the frontier nodes' caches and
//!    returns bit-identical results, with the hits observable in
//!    `QueryOutcome::worker_cache_hits`;
//! 2. an epoch bump (the distributed rebuild-invalidation signal) drops a
//!    worker's cache — no stale partials, ever;
//! 3. capacity eviction can change `ScanStats`, never results.

use pd_core::{query, BuildOptions, DataStore};
use pd_data::{generate_logs, LogsSpec};
use pd_dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape};
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pd-dist-worker"))
}

fn rpc() -> Transport {
    Transport::Rpc(RpcConfig {
        worker_bin: Some(worker_bin()),
        budget: Duration::from_secs(30),
        ..Default::default()
    })
}

fn build_options() -> BuildOptions {
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    build
}

fn rpc_cluster(table: &pd_data::Table, shards: usize, fanout: usize, cache: usize) -> Cluster {
    Cluster::build(
        table,
        &ClusterConfig {
            shards,
            replication: false,
            shard_cache: cache,
            build: build_options(),
            tree: TreeShape { fanout },
            transport: rpc(),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn identical_queries_hit_the_frontier_caches() {
    // 3 shards at fanout 2: the frontier is two merge servers, so warm
    // hits must come from the *mixers* — the topmost caches — and the
    // leaves beneath them must see no traffic at all (every row reported
    // as cached, nothing scanned).
    let table = generate_logs(&LogsSpec::scaled(900));
    let store = DataStore::build(&table, &build_options()).unwrap();
    let cluster = rpc_cluster(&table, 3, 2, 64);
    let sql = "SELECT country, COUNT(*) c, SUM(latency) s FROM logs \
               GROUP BY country ORDER BY c DESC LIMIT 10";
    let (expect, _) = query(&store, sql).unwrap();

    let cold = cluster.query(sql).unwrap();
    assert_eq!(cold.result, expect);
    assert_eq!(cold.worker_cache_hits(), 0, "first execution computes everywhere");

    for repeat in 0..3 {
        let warm = cluster.query(sql).unwrap();
        assert_eq!(warm.result, expect, "repeat {repeat}: hits are bit-identical");
        assert_eq!(
            warm.worker_cache_hits(),
            2,
            "repeat {repeat}: both frontier mixers answer from cache"
        );
        assert_eq!(warm.stats.rows_cached, warm.stats.rows_total, "repeat {repeat}");
        assert_eq!(warm.stats.rows_scanned, 0, "repeat {repeat}: zero hops below the frontier");
    }

    // Presentation-only variations share the cached partials: the
    // signature excludes ORDER BY / LIMIT / HAVING.
    let limited = cluster
        .query(
            "SELECT country, COUNT(*) c, SUM(latency) s FROM logs \
             GROUP BY country ORDER BY c DESC LIMIT 2",
        )
        .unwrap();
    assert_eq!(limited.worker_cache_hits(), 2, "LIMIT does not change the partial");
    assert_eq!(limited.result.rows.len(), 2);

    // A different restriction is a different signature: back to computing.
    let other = cluster
        .query("SELECT country, COUNT(*) c FROM logs WHERE country = 'DE' GROUP BY country")
        .unwrap();
    assert_eq!(other.worker_cache_hits(), 0, "new restriction, new signature");
}

#[test]
fn epoch_bump_drops_a_worker_cache() {
    // Straight at the protocol: one leaf worker, queried with explicit
    // epochs. The cache serves repeats within an epoch and is dropped the
    // moment the epoch moves — the per-node form of rebuild invalidation.
    use pd_dist::rpc::{Addr, LoadRequest, QueryRequest, Request, Response, RpcClient};
    use pd_dist::ReapGuard;
    use pd_sql::{analyze, parse_query};

    let dir = std::env::temp_dir().join(format!("pd-epoch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("w.sock");
    let worker = ReapGuard::new(
        std::process::Command::new(worker_bin()).arg("--socket").arg(&socket).spawn().unwrap(),
    );
    let addr = Addr::Unix(socket);

    let table = generate_logs(&LogsSpec::scaled(400));
    let mut client = RpcClient::new(addr, false);
    client.connect_with_retry(Duration::from_secs(30)).unwrap();
    let load = Request::Load(Box::new(LoadRequest {
        shard: 0,
        schema: table.schema().clone(),
        rows: table.iter_rows().collect(),
        build: BuildOptions::basic(),
        threads: 1,
        cache_budget: 1 << 20,
        cache_entries: 8,
        epoch: 5,
        name: "l0p".into(),
    }));
    assert!(matches!(client.call(&load, Duration::from_secs(60)).unwrap(), Response::Loaded(_)));

    let analyzed =
        analyze(&parse_query("SELECT country, COUNT(*) c FROM logs GROUP BY country").unwrap())
            .unwrap();
    let mut ask = |epoch: u64| {
        let request = Request::Query(Box::new(QueryRequest {
            query: analyzed.clone(),
            budget: Duration::from_secs(30),
            hedge_micros: 0,
            killed: Vec::new(),
            epoch,
            chaos: Vec::new(),
            chunk_pruning: true,
        }));
        match client.call(&request, Duration::from_secs(30)).unwrap() {
            Response::Answer(answer) => answer,
            other => panic!("expected an answer, got {other:?}"),
        }
    };

    let cold = ask(5);
    assert!(!cold.reports[0].cache_hit);
    assert_eq!(cold.stats.worker_cache_hits, 0);

    let warm = ask(5);
    assert!(warm.reports[0].cache_hit, "same epoch, same signature: a hit");
    assert_eq!(warm.stats.worker_cache_hits, 1);
    assert_eq!(warm.partial, cold.partial, "the cached partial is bit-identical");
    assert_eq!(warm.stats.rows_cached, warm.stats.rows_total);

    let after_bump = ask(6);
    assert!(
        !after_bump.reports[0].cache_hit,
        "an advanced epoch must drop the cache before answering"
    );
    assert_eq!(after_bump.partial, cold.partial, "same data, so same recomputed partial");

    let warm_again = ask(6);
    assert!(warm_again.reports[0].cache_hit, "the new epoch caches afresh");

    drop(worker);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rebuild_invalidates_worker_caches_through_the_tree() {
    // Cluster-level: warm the tree, rebuild with different data, and the
    // next answers must be the new data's — cold (no cache can survive a
    // rebuild) and then warm again on the new epoch.
    let before = generate_logs(&LogsSpec::scaled(600));
    let after = generate_logs(&LogsSpec::scaled(450));
    let mut cluster = rpc_cluster(&before, 2, 16, 64);
    let sql = "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10";

    let old = cluster.query(sql).unwrap();
    assert_eq!(cluster.query(sql).unwrap().worker_cache_hits(), 2, "warm before rebuild");
    assert_eq!(cluster.epoch(), 1);

    cluster.rebuild(&after).unwrap();
    assert_eq!(cluster.epoch(), 2, "rebuild bumps the epoch");
    let fresh = cluster.query(sql).unwrap();
    assert_eq!(fresh.worker_cache_hits(), 0, "rebuild must invalidate every node's cache");
    assert_eq!(fresh.stats.rows_total, 450, "stats reflect the new table");
    let store = DataStore::build(&after, &build_options()).unwrap();
    let (expect, _) = query(&store, sql).unwrap();
    assert_eq!(fresh.result, expect, "no stale partials anywhere in the tree");
    assert_ne!(fresh.result, old.result, "the data actually changed");

    let rewarm = cluster.query(sql).unwrap();
    assert_eq!(rewarm.result, expect);
    assert_eq!(rewarm.worker_cache_hits(), 2, "the new epoch's caches serve repeats");
}

#[test]
fn capacity_eviction_changes_stats_never_results() {
    // Three trees over the same data: roomy caches, starved caches
    // (capacity 1 per node, so alternating signatures thrash forever),
    // and caching disabled. Results must be identical at every step.
    let table = generate_logs(&LogsSpec::scaled(500));
    let store = DataStore::build(&table, &build_options()).unwrap();
    let roomy = rpc_cluster(&table, 2, 16, 64);
    let starved = rpc_cluster(&table, 2, 16, 1);
    let none = rpc_cluster(&table, 2, 16, 0);

    let queries = [
        "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
        "SELECT table_name, COUNT(*) c FROM logs GROUP BY table_name ORDER BY c DESC LIMIT 10",
        "SELECT country, SUM(latency) s FROM logs WHERE latency > 100.0 \
         GROUP BY country ORDER BY country ASC",
    ];
    let mut roomy_hits = 0;
    for round in 0..3 {
        for sql in queries {
            let (expect, _) = query(&store, sql).unwrap();
            let a = roomy.query(sql).unwrap();
            let b = starved.query(sql).unwrap();
            let c = none.query(sql).unwrap();
            assert_eq!(a.result, expect, "round {round}: {sql}");
            assert_eq!(b.result, expect, "round {round}: eviction changed a result: {sql}");
            assert_eq!(c.result, expect, "round {round}: caching changed a result: {sql}");
            roomy_hits += a.worker_cache_hits();
            assert_eq!(c.worker_cache_hits(), 0, "disabled caches never hit");
            for outcome in [&a, &b, &c] {
                assert_eq!(
                    outcome.stats.rows_skipped
                        + outcome.stats.rows_cached
                        + outcome.stats.rows_scanned,
                    outcome.stats.rows_total,
                    "round {round}: accounting must balance: {sql}"
                );
            }
        }
    }
    assert!(roomy_hits > 0, "the roomy tree must see repeats");
}
