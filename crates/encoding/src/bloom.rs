//! Bloom filters over dictionary values (§5, "Further Optimizing the
//! Global-Dictionaries").
//!
//! *"To further reduce the situations where a (sub-)dictionary needs to be
//! loaded into memory, we additionally keep Bloom-filters for each
//! dictionary. With these Bloom-filters one can quickly check whether
//! certain values are present in a dictionary at all."*
//!
//! Keys are inserted as 64-bit hashes; the `k` probe positions derive from
//! the two hash halves (Kirsch–Mitzenmacher double hashing).

use pd_common::wire::{Decode, Encode, Reader};
use pd_common::{fx_hash64, Error, HeapSize, Result};
use std::hash::Hash;

/// A fixed-size Bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    words: Box<[u64]>,
    /// Number of probe positions per key.
    k: u32,
    /// Total bit count (power of two).
    bits: u64,
}

impl BloomFilter {
    /// Create a filter sized for `expected_keys` at roughly
    /// `bits_per_key` bits each (10 bits/key ≈ 1% false positives).
    pub fn new(expected_keys: usize, bits_per_key: usize) -> Self {
        let bits = (expected_keys.max(1) * bits_per_key.max(1)).next_power_of_two() as u64;
        let bits = bits.max(64);
        // Optimal k = ln(2) * bits/keys, clamped to a sane range.
        let k = ((bits as f64 / expected_keys.max(1) as f64) * std::f64::consts::LN_2)
            .round()
            .clamp(1.0, 16.0) as u32;
        BloomFilter { words: vec![0u64; (bits / 64) as usize].into_boxed_slice(), k, bits }
    }

    /// Insert a key.
    pub fn insert<T: Hash + ?Sized>(&mut self, key: &T) {
        let h = fx_hash64(key);
        let (h1, h2) = (h as u32 as u64, h >> 32);
        for i in 0..u64::from(self.k) {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2 | 1))) & (self.bits - 1);
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// May `key` be present? `false` is definitive; `true` may be a false
    /// positive.
    pub fn may_contain<T: Hash + ?Sized>(&self, key: &T) -> bool {
        let h = fx_hash64(key);
        let (h1, h2) = (h as u32 as u64, h >> 32);
        (0..u64::from(self.k)).all(|i| {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2 | 1))) & (self.bits - 1);
            self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Total bits in the filter.
    pub fn bit_count(&self) -> u64 {
        self.bits
    }

    /// Fraction of set bits — a quick saturation diagnostic.
    pub fn fill_ratio(&self) -> f64 {
        let ones: u64 = self.words.iter().map(|w| u64::from(w.count_ones())).sum();
        ones as f64 / self.bits as f64
    }
}

impl HeapSize for BloomFilter {
    fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

// Wire codec: filters travel inside shard metadata (`Load`/`Attach` acks),
// so the decode side must uphold the invariants every probe relies on —
// `bits` a power of two ≥ 64 (the probe mask is `bits - 1`), `k` in the
// constructor's clamp range, and exactly `bits / 64` words (probes index
// words unchecked-by-construction). Corrupt bytes are an `Err`, never a
// panic or an out-of-bounds probe.
impl Encode for BloomFilter {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bits.encode(out);
        self.k.encode(out);
        self.words.encode(out);
    }
}

impl Decode for BloomFilter {
    fn decode(r: &mut Reader<'_>) -> Result<BloomFilter> {
        let bits = r.u64()?;
        if !bits.is_power_of_two() || bits < 64 {
            return Err(Error::Data(format!(
                "wire: bloom bit count {bits} is not a power of two ≥ 64"
            )));
        }
        let k = u32::decode(r)?;
        if !(1..=16).contains(&k) {
            return Err(Error::Data(format!("wire: bloom probe count {k} outside 1..=16")));
        }
        let words = Box::<[u64]>::decode(r)?;
        if words.len() as u64 != bits / 64 {
            return Err(Error::Data(format!(
                "wire: bloom with {bits} bits carries {} words (need {})",
                words.len(),
                bits / 64
            )));
        }
        Ok(BloomFilter { words, k, bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u64 {
            f.insert(&i);
        }
        for i in 0..1000u64 {
            assert!(f.may_contain(&i), "false negative for {i}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(10_000, 10);
        for i in 0..10_000u64 {
            f.insert(&i);
        }
        let fp = (10_000..110_000u64).filter(|i| f.may_contain(i)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn string_keys() {
        let mut f = BloomFilter::new(100, 10);
        f.insert("la redoute");
        f.insert("voyages sncf");
        assert!(f.may_contain("la redoute"));
        assert!(!f.may_contain("definitely-absent-search-term-xyz"));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(100, 10);
        assert!(!f.may_contain(&1u64));
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn fill_ratio_reflects_inserts() {
        let mut f = BloomFilter::new(64, 8);
        let before = f.fill_ratio();
        for i in 0..64u64 {
            f.insert(&i);
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() < 1.0);
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        let mut f = BloomFilter::new(100, 10);
        for i in 0..100u64 {
            f.insert(&i);
        }
        let bytes = pd_common::wire::to_bytes(&f);
        let back: BloomFilter = pd_common::wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, f);
        // Truncations error, never panic.
        for cut in 0..bytes.len().min(64) {
            assert!(pd_common::wire::from_bytes::<BloomFilter>(&bytes[..cut]).is_err());
        }
        // An invalid bit count (mask would be wrong) is rejected.
        let mut bad = bytes.clone();
        bad[0] = 63; // u64 LE: bits = 63, not a power of two
        assert!(pd_common::wire::from_bytes::<BloomFilter>(&bad).is_err());
    }

    #[test]
    fn degenerate_sizes_survive() {
        let mut f = BloomFilter::new(0, 0);
        f.insert(&1u64);
        assert!(f.may_contain(&1u64));
        assert!(f.bit_count() >= 64);
    }
}
