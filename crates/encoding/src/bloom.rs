//! Bloom filters over dictionary values (§5, "Further Optimizing the
//! Global-Dictionaries").
//!
//! *"To further reduce the situations where a (sub-)dictionary needs to be
//! loaded into memory, we additionally keep Bloom-filters for each
//! dictionary. With these Bloom-filters one can quickly check whether
//! certain values are present in a dictionary at all."*
//!
//! Keys are inserted as 64-bit hashes; the `k` probe positions derive from
//! the two hash halves (Kirsch–Mitzenmacher double hashing).

use pd_common::{fx_hash64, HeapSize};
use std::hash::Hash;

/// A fixed-size Bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    words: Box<[u64]>,
    /// Number of probe positions per key.
    k: u32,
    /// Total bit count (power of two).
    bits: u64,
}

impl BloomFilter {
    /// Create a filter sized for `expected_keys` at roughly
    /// `bits_per_key` bits each (10 bits/key ≈ 1% false positives).
    pub fn new(expected_keys: usize, bits_per_key: usize) -> Self {
        let bits = (expected_keys.max(1) * bits_per_key.max(1)).next_power_of_two() as u64;
        let bits = bits.max(64);
        // Optimal k = ln(2) * bits/keys, clamped to a sane range.
        let k = ((bits as f64 / expected_keys.max(1) as f64) * std::f64::consts::LN_2)
            .round()
            .clamp(1.0, 16.0) as u32;
        BloomFilter { words: vec![0u64; (bits / 64) as usize].into_boxed_slice(), k, bits }
    }

    /// Insert a key.
    pub fn insert<T: Hash + ?Sized>(&mut self, key: &T) {
        let h = fx_hash64(key);
        let (h1, h2) = (h as u32 as u64, h >> 32);
        for i in 0..u64::from(self.k) {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2 | 1))) & (self.bits - 1);
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// May `key` be present? `false` is definitive; `true` may be a false
    /// positive.
    pub fn may_contain<T: Hash + ?Sized>(&self, key: &T) -> bool {
        let h = fx_hash64(key);
        let (h1, h2) = (h as u32 as u64, h >> 32);
        (0..u64::from(self.k)).all(|i| {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2 | 1))) & (self.bits - 1);
            self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Total bits in the filter.
    pub fn bit_count(&self) -> u64 {
        self.bits
    }

    /// Fraction of set bits — a quick saturation diagnostic.
    pub fn fill_ratio(&self) -> f64 {
        let ones: u64 = self.words.iter().map(|w| u64::from(w.count_ones())).sum();
        ones as f64 / self.bits as f64
    }
}

impl HeapSize for BloomFilter {
    fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u64 {
            f.insert(&i);
        }
        for i in 0..1000u64 {
            assert!(f.may_contain(&i), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(10_000, 10);
        for i in 0..10_000u64 {
            f.insert(&i);
        }
        let fp = (10_000..110_000u64).filter(|i| f.may_contain(i)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn string_keys() {
        let mut f = BloomFilter::new(100, 10);
        f.insert("la redoute");
        f.insert("voyages sncf");
        assert!(f.may_contain("la redoute"));
        assert!(!f.may_contain("definitely-absent-search-term-xyz"));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(100, 10);
        assert!(!f.may_contain(&1u64));
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn fill_ratio_reflects_inserts() {
        let mut f = BloomFilter::new(64, 8);
        let before = f.fill_ratio();
        for i in 0..64u64 {
            f.insert(&i);
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() < 1.0);
    }

    #[test]
    fn degenerate_sizes_survive() {
        let mut f = BloomFilter::new(0, 0);
        f.insert(&1u64);
        assert!(f.may_contain(&1u64));
        assert!(f.bit_count() >= 64);
    }
}
