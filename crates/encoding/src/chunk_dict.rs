//! Chunk dictionaries: the second indirection of §2.3.
//!
//! Per chunk, the global-ids occurring in that chunk are stored sorted; the
//! *chunk-id* of a value is its index in this array. The sortedness gives
//! the two operations chunk skipping needs: `chunk_id_of(global_id)` (binary
//! search) and the reverse `global_id_of(chunk_id)` (array access), plus
//! cheap set-intersection tests against the global-ids of a restriction.

use pd_common::{Error, HeapSize, Result};
use pd_compress::varint;

/// Sorted global-ids present in one chunk; chunk-id = index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkDict {
    global_ids: Box<[u32]>,
}

impl ChunkDict {
    /// Build from the sorted, deduplicated global-ids of a chunk.
    pub fn from_sorted(global_ids: Vec<u32>) -> Result<Self> {
        for pair in global_ids.windows(2) {
            if pair[0] >= pair[1] {
                return Err(Error::Data("chunk dictionary must be sorted and unique".into()));
            }
        }
        Ok(ChunkDict { global_ids: global_ids.into_boxed_slice() })
    }

    /// Number of distinct values in the chunk (the `n` of §2.3; group-by
    /// count arrays are sized by this).
    pub fn len(&self) -> u32 {
        self.global_ids.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }

    /// Chunk-id of `global_id`, if the value occurs in this chunk.
    #[inline]
    pub fn chunk_id_of(&self, global_id: u32) -> Option<u32> {
        self.global_ids.binary_search(&global_id).ok().map(|i| i as u32)
    }

    /// Global-id for a chunk-id. Panics if out of range.
    #[inline]
    pub fn global_id_of(&self, chunk_id: u32) -> u32 {
        self.global_ids[chunk_id as usize]
    }

    /// Does any of `sorted_global_ids` occur in this chunk? This is the
    /// §2.4 skipping test for `IN` restrictions; both sides sorted makes it
    /// a merge scan.
    pub fn contains_any(&self, sorted_global_ids: &[u32]) -> bool {
        if self.global_ids.is_empty() || sorted_global_ids.is_empty() {
            return false;
        }
        // Galloping merge: whichever side is much smaller drives binary
        // searches into the other.
        if sorted_global_ids.len() * 8 < self.global_ids.len() {
            return sorted_global_ids.iter().any(|id| self.chunk_id_of(*id).is_some());
        }
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.global_ids.len() && j < sorted_global_ids.len() {
            match self.global_ids[i].cmp(&sorted_global_ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Does every row-value possibility of this chunk lie inside
    /// `sorted_global_ids`? Used to detect *fully active* chunks whose
    /// results can be served from the chunk-result cache (§6: "we also
    /// cache results for chunks which are fully active").
    pub fn subset_of(&self, sorted_global_ids: &[u32]) -> bool {
        let mut j = 0usize;
        'outer: for &id in self.global_ids.iter() {
            while j < sorted_global_ids.len() {
                match sorted_global_ids[j].cmp(&id) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Smallest global-id in the chunk, if non-empty.
    pub fn min_global_id(&self) -> Option<u32> {
        self.global_ids.first().copied()
    }

    /// Largest global-id in the chunk, if non-empty.
    pub fn max_global_id(&self) -> Option<u32> {
        self.global_ids.last().copied()
    }

    /// Iterate global-ids ascending (chunk-id order).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.global_ids.iter().copied()
    }

    /// Serialize as delta varints (dense ascending ids compress to ~1
    /// byte each).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.global_ids.len() + 8);
        varint::write_u64(&mut out, self.global_ids.len() as u64);
        let mut prev = 0u32;
        for &id in self.global_ids.iter() {
            varint::write_u64(&mut out, u64::from(id - prev));
            prev = id;
        }
        out
    }

    /// Inverse of [`ChunkDict::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ChunkDict> {
        let mut pos = 0;
        let len = varint::read_u64(bytes, &mut pos)? as usize;
        let mut ids = Vec::with_capacity(len.min(1 << 20));
        let mut prev = 0u64;
        for i in 0..len {
            let delta = varint::read_u64(bytes, &mut pos)?;
            if i > 0 && delta == 0 {
                return Err(Error::Data("chunk dict: zero delta".into()));
            }
            prev += delta;
            if prev > u64::from(u32::MAX) {
                return Err(Error::Data("chunk dict: id overflow".into()));
            }
            ids.push(prev as u32);
        }
        ChunkDict::from_sorted(ids)
    }
}

impl HeapSize for ChunkDict {
    fn heap_bytes(&self) -> usize {
        self.global_ids.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(ids: &[u32]) -> ChunkDict {
        ChunkDict::from_sorted(ids.to_vec()).unwrap()
    }

    #[test]
    fn paper_figure1_chunk0() {
        // Figure 1: chunk 0 holds global-ids {1, 2, 4, 5, 12}.
        let d = dict(&[1, 2, 4, 5, 12]);
        assert_eq!(d.len(), 5);
        assert_eq!(d.chunk_id_of(4), Some(2));
        assert_eq!(d.chunk_id_of(9), None); // "la redoute" not in chunk 0
        assert_eq!(d.global_id_of(3), 5);
        assert_eq!(d.min_global_id(), Some(1));
        assert_eq!(d.max_global_id(), Some(12));
    }

    #[test]
    fn paper_query_example_active_chunks() {
        // §2.4: global-ids (9, 11); 9 in no chunk, 11 only in chunk 2.
        let ch0 = dict(&[1, 2, 4, 5, 12]);
        let ch1 = dict(&[0, 1, 5, 6, 7]);
        let ch2 = dict(&[1, 3, 5, 10, 11]);
        let restriction = [9u32, 11];
        assert!(!ch0.contains_any(&restriction));
        assert!(!ch1.contains_any(&restriction));
        assert!(ch2.contains_any(&restriction));
    }

    #[test]
    fn contains_any_small_and_large_probe_paths() {
        let d = dict(&(0..1000).map(|i| i * 3).collect::<Vec<_>>());
        // Small probe (binary-search path).
        assert!(d.contains_any(&[999 * 3]));
        assert!(!d.contains_any(&[1]));
        // Large probe (merge path).
        let probe: Vec<u32> = (0..500).map(|i| i * 2 + 1).collect();
        assert_eq!(d.contains_any(&probe), probe.iter().any(|p| p % 3 == 0));
    }

    #[test]
    fn subset_detection_for_fully_active_chunks() {
        let d = dict(&[2, 4, 6]);
        assert!(d.subset_of(&[1, 2, 3, 4, 5, 6]));
        assert!(d.subset_of(&[2, 4, 6]));
        assert!(!d.subset_of(&[2, 4]));
        assert!(!d.subset_of(&[]));
        assert!(dict(&[]).subset_of(&[])); // vacuous
    }

    #[test]
    fn unsorted_input_rejected() {
        assert!(ChunkDict::from_sorted(vec![3, 1]).is_err());
        assert!(ChunkDict::from_sorted(vec![1, 1]).is_err());
    }

    #[test]
    fn serialization_round_trips() {
        for ids in [vec![], vec![0], vec![5, 100, 101, 4000], (0..2000).collect::<Vec<u32>>()] {
            let d = ChunkDict::from_sorted(ids).unwrap();
            let back = ChunkDict::from_bytes(&d.to_bytes()).unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn dense_ids_serialize_compactly() {
        let d = dict(&(0..10_000).collect::<Vec<u32>>());
        // Delta encoding: ~1 byte per id.
        assert!(d.to_bytes().len() < 10_100);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(ChunkDict::from_bytes(&[]).is_err());
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 3);
        varint::write_u64(&mut buf, 1);
        varint::write_u64(&mut buf, 0); // zero delta → duplicate
        varint::write_u64(&mut buf, 1);
        assert!(ChunkDict::from_bytes(&buf).is_err());
    }
}
