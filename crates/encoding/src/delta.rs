//! Self-contained columnar deltas for streaming appends.
//!
//! The paper's freshness story (§4 punts on it) needs new rows to reach
//! every shard **without** reshipping the tables already resident there.
//! The unit shipped is a [`TableDelta`]: per column, a freshly built
//! *sorted* dictionary over only the delta's distinct values plus one
//! dictionary code per delta row. The receiver resolves each delta value
//! against its own resident [`GlobalDict`] via [`GlobalDict::extend`] —
//! values already known keep their id, genuinely new values get appended
//! tail ids — so codes encoded before the append never change and group
//! folds over old and new chunks stay bit-identical.
//!
//! A [`DictDelta`] describes what one such resolution appended (the
//! receiver-side counterpart), which is what shard-metadata maintenance
//! consumes to refresh zone maps and Bloom filters for the new values
//! only.
//!
//! Wire strictness mirrors the rest of the codec surface: decoding
//! re-validates everything a consumer indexes by (schema agreement, code
//! bounds, row counts), so corrupt frames are an `Err`, never a panic or
//! an out-of-bounds dictionary lookup.

use crate::dict::{build_dict, GlobalDict};
use pd_common::wire::{Decode, Encode, Reader};
use pd_common::{Error, Result, Schema, Value};

/// One column's contribution to a delta batch: a sorted dictionary over
/// the batch's distinct values and one code per batch row.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDelta {
    /// Column name (must match the schema field at the same index).
    pub name: String,
    /// Sorted dictionary over the delta's distinct values only.
    pub dict: GlobalDict,
    /// One dictionary code per delta row, each `< dict.len()`.
    pub codes: Vec<u32>,
}

impl ColumnDelta {
    /// Build from raw row values (arrival order). Rejects empty input,
    /// nulls and mixed types, like [`build_dict`].
    pub fn from_values(name: &str, values: &[Value]) -> Result<ColumnDelta> {
        let (dict, codes) = build_dict(values, false)?;
        Ok(ColumnDelta { name: name.to_owned(), dict, codes })
    }

    /// Materialize the column back into row values (arrival order).
    pub fn values(&self) -> Vec<Value> {
        self.codes.iter().map(|&c| self.dict.value(c)).collect()
    }
}

/// A batch of appended rows in columnar form, self-contained: the sender
/// needs no knowledge of any receiver's resident dictionaries.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDelta {
    pub schema: Schema,
    /// Appended row count (every column carries exactly this many codes).
    pub rows: u64,
    /// One delta per schema field, in field order.
    pub columns: Vec<ColumnDelta>,
}

impl TableDelta {
    /// Build a delta from per-column value slices in schema field order.
    /// All columns must be non-empty and of equal length.
    pub fn from_columns(schema: Schema, columns: &[&[Value]]) -> Result<TableDelta> {
        if columns.len() != schema.fields().len() {
            return Err(Error::Data(format!(
                "delta: {} columns for a {}-field schema",
                columns.len(),
                schema.fields().len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        if rows == 0 {
            return Err(Error::Data("delta: cannot build an empty delta".into()));
        }
        let mut out = Vec::with_capacity(columns.len());
        for (field, values) in schema.fields().iter().zip(columns) {
            if values.len() != rows {
                return Err(Error::Data(format!(
                    "delta: column `{}` has {} rows, expected {rows}",
                    field.name,
                    values.len()
                )));
            }
            out.push(ColumnDelta::from_values(&field.name, values)?);
        }
        let delta = TableDelta { schema, rows: rows as u64, columns: out };
        delta.validate()?;
        Ok(delta)
    }

    /// Check every invariant a consumer indexes by. Construction and
    /// decoding both funnel through this, so a [`TableDelta`] in hand is
    /// always safe to apply.
    pub fn validate(&self) -> Result<()> {
        if self.rows == 0 {
            return Err(Error::Data("delta: zero rows".into()));
        }
        if self.columns.len() != self.schema.fields().len() {
            return Err(Error::Data(format!(
                "delta: {} columns for a {}-field schema",
                self.columns.len(),
                self.schema.fields().len()
            )));
        }
        for (field, column) in self.schema.fields().iter().zip(&self.columns) {
            if column.name != field.name {
                return Err(Error::Data(format!(
                    "delta: column `{}` does not match schema field `{}`",
                    column.name, field.name
                )));
            }
            if column.dict.data_type() != field.data_type {
                return Err(Error::Data(format!(
                    "delta: column `{}` dictionary is {}, schema says {}",
                    column.name,
                    column.dict.data_type(),
                    field.data_type
                )));
            }
            // Delta dictionaries are freshly built and sorted; a tailed
            // dictionary here would smuggle in unvalidated id order.
            if !column.dict.is_value_ordered() {
                return Err(Error::Data(format!(
                    "delta: column `{}` carries a tailed dictionary",
                    column.name
                )));
            }
            if column.codes.len() as u64 != self.rows {
                return Err(Error::Data(format!(
                    "delta: column `{}` has {} codes for {} rows",
                    column.name,
                    column.codes.len(),
                    self.rows
                )));
            }
            if let Some(bad) = column.codes.iter().find(|&&c| c >= column.dict.len()) {
                return Err(Error::Data(format!(
                    "delta: column `{}` code {bad} out of range (dict len {})",
                    column.name,
                    column.dict.len()
                )));
            }
        }
        Ok(())
    }

    /// Materialize every column back into row values (arrival order), in
    /// schema field order.
    pub fn materialized_columns(&self) -> Vec<Vec<Value>> {
        self.columns.iter().map(ColumnDelta::values).collect()
    }
}

/// What resolving one column of a [`TableDelta`] appended to a resident
/// dictionary: the dictionary length before the append plus the values
/// appended, in id order (`appended[i]` received id `base_len + i`).
#[derive(Debug, Clone, PartialEq)]
pub struct DictDelta {
    pub base_len: u32,
    pub appended: Vec<Value>,
}

impl DictDelta {
    /// Did this append introduce any new dictionary entries?
    pub fn is_empty(&self) -> bool {
        self.appended.is_empty()
    }
}

// --- wire codecs ------------------------------------------------------------

impl Encode for ColumnDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.dict.to_bytes().encode(out);
        self.codes.encode(out);
    }
}

impl Decode for ColumnDelta {
    fn decode(r: &mut Reader<'_>) -> Result<ColumnDelta> {
        let name = String::decode(r)?;
        let dict_bytes = Vec::<u8>::decode(r)?;
        let dict = GlobalDict::from_bytes(&dict_bytes)?;
        let codes = Vec::<u32>::decode(r)?;
        Ok(ColumnDelta { name, dict, codes })
    }
}

impl Encode for TableDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema.encode(out);
        self.rows.encode(out);
        self.columns.encode(out);
    }
}

impl Decode for TableDelta {
    fn decode(r: &mut Reader<'_>) -> Result<TableDelta> {
        let delta = TableDelta {
            schema: Schema::decode(r)?,
            rows: r.u64()?,
            columns: Vec::<ColumnDelta>::decode(r)?,
        };
        delta.validate()?;
        Ok(delta)
    }
}

impl Encode for DictDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.base_len.encode(out);
        self.appended.encode(out);
    }
}

impl Decode for DictDelta {
    fn decode(r: &mut Reader<'_>) -> Result<DictDelta> {
        Ok(DictDelta { base_len: u32::decode(r)?, appended: Vec::<Value>::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::wire::{from_bytes, to_bytes};
    use pd_common::DataType;

    fn sample() -> TableDelta {
        let schema = Schema::of(&[
            ("country", DataType::Str),
            ("latency", DataType::Int),
            ("score", DataType::Float),
        ]);
        let countries: Vec<Value> =
            ["SG", "DE", "SG", "BR"].iter().map(|&s| Value::from(s)).collect();
        let latencies: Vec<Value> = [9i64, 120, 14, 9].iter().map(|&v| Value::Int(v)).collect();
        let scores: Vec<Value> =
            [0.5f64, -0.0, 0.5, 2.25].iter().map(|&v| Value::Float(v)).collect();
        TableDelta::from_columns(schema, &[&countries, &latencies, &scores]).unwrap()
    }

    #[test]
    fn from_columns_builds_sorted_dicts_and_codes() {
        let delta = sample();
        assert_eq!(delta.rows, 4);
        assert_eq!(delta.columns[0].dict.len(), 3, "BR, DE, SG");
        assert!(delta.columns.iter().all(|c| c.dict.is_value_ordered()));
        // Materialization inverts the encoding exactly.
        let cols = delta.materialized_columns();
        assert_eq!(cols[0][0], Value::from("SG"));
        assert_eq!(cols[1][1], Value::Int(120));
        assert_eq!(cols[2][1], Value::Float(-0.0));
    }

    #[test]
    fn from_columns_rejects_shape_mismatches() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let a = [Value::Int(1), Value::Int(2)];
        let b = [Value::Int(3)];
        assert!(TableDelta::from_columns(schema.clone(), &[&a, &b]).is_err(), "ragged");
        assert!(TableDelta::from_columns(schema.clone(), &[&a]).is_err(), "missing column");
        assert!(TableDelta::from_columns(schema, &[&[], &[]]).is_err(), "empty");
        // A type mismatch against the schema is caught by validate().
        let str_schema = Schema::of(&[("a", DataType::Str)]);
        assert!(TableDelta::from_columns(str_schema, &[&a]).is_err(), "int data, str field");
    }

    #[test]
    fn wire_round_trip_is_bit_identical() {
        let delta = sample();
        let back: TableDelta = from_bytes(&to_bytes(&delta)).unwrap();
        assert_eq!(back, delta);
        let dd = DictDelta { base_len: 7, appended: vec![Value::Int(9), Value::from("x")] };
        let back: DictDelta = from_bytes(&to_bytes(&dd)).unwrap();
        assert_eq!(back, dd);
    }

    #[test]
    fn decode_rejects_corrupted_invariants() {
        let delta = sample();
        // Out-of-range code.
        let mut bad = delta.clone();
        bad.columns[1].codes[0] = 99;
        assert!(from_bytes::<TableDelta>(&to_bytes(&bad)).is_err(), "code out of range");
        // Row-count mismatch.
        let mut bad = delta.clone();
        bad.columns[0].codes.pop();
        assert!(from_bytes::<TableDelta>(&to_bytes(&bad)).is_err(), "short column");
        // Renamed column no longer matches the schema.
        let mut bad = delta.clone();
        bad.columns[0].name = "nope".into();
        assert!(from_bytes::<TableDelta>(&to_bytes(&bad)).is_err(), "name mismatch");
        // Truncations error, never panic.
        let bytes = to_bytes(&delta);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<TableDelta>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
