//! Global dictionaries: all distinct values of a column, sorted, addressed
//! by integer rank (*global-id*) — §2.3 of the paper.
//!
//! Lookups go both ways: `value(global_id)` when materializing query
//! results (e.g. the top-10 strings after a group-by) and `id_of(value)`
//! when translating literals in `WHERE` clauses into global-ids for chunk
//! skipping.
//!
//! String dictionaries come in two flavours, mirroring the paper's §3
//! optimization step: a "canonical" sorted array with binary search, and
//! the compact 4-bit [`TrieDict`].

use crate::trie::TrieDict;
use pd_common::{DataType, Error, FxHashMap, HeapSize, Result, Value};
use pd_compress::varint;

/// Sorted array of distinct strings; rank = index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedStrDict {
    values: Box<[Box<str>]>,
}

impl SortedStrDict {
    /// Build from sorted, unique strings.
    pub fn from_sorted(values: Vec<Box<str>>) -> Result<Self> {
        for pair in values.windows(2) {
            if pair[0] >= pair[1] {
                return Err(Error::Data("dictionary input must be sorted and unique".into()));
            }
        }
        Ok(SortedStrDict { values: values.into_boxed_slice() })
    }

    pub fn len(&self) -> u32 {
        self.values.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: u32) -> &str {
        &self.values[id as usize]
    }

    pub fn id_of(&self, value: &str) -> Option<u32> {
        self.values.binary_search_by(|v| v.as_ref().cmp(value)).ok().map(|i| i as u32)
    }

    /// Rank of the first entry `>= value`.
    pub fn lower_bound(&self, value: &str) -> u32 {
        self.values.partition_point(|v| v.as_ref() < value) as u32
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(AsRef::as_ref)
    }
}

impl HeapSize for SortedStrDict {
    fn heap_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Box<str>>()
            + self.values.iter().map(|s| s.len()).sum::<usize>()
    }
}

/// String dictionary: sorted array ("canonical", §2.3) or trie ("OptDicts",
/// §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrDict {
    Sorted(SortedStrDict),
    Trie(TrieDict),
}

impl StrDict {
    pub fn len(&self) -> u32 {
        match self {
            StrDict::Sorted(d) => d.len(),
            StrDict::Trie(t) => t.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn value(&self, id: u32) -> String {
        match self {
            StrDict::Sorted(d) => d.value(id).to_owned(),
            StrDict::Trie(t) => t.value(id),
        }
    }

    pub fn id_of(&self, value: &str) -> Option<u32> {
        match self {
            StrDict::Sorted(d) => d.id_of(value),
            StrDict::Trie(t) => t.id_of(value),
        }
    }

    /// Re-encode as a trie (no-op if already one).
    pub fn to_trie(&self) -> Result<StrDict> {
        match self {
            StrDict::Sorted(d) => {
                let refs: Vec<&str> = d.iter().collect();
                Ok(StrDict::Trie(TrieDict::from_sorted(&refs)?))
            }
            StrDict::Trie(t) => Ok(StrDict::Trie(t.clone())),
        }
    }

    pub fn for_each(&self, mut f: impl FnMut(u32, &str)) {
        match self {
            StrDict::Sorted(d) => {
                for (id, v) in d.iter().enumerate() {
                    f(id as u32, v);
                }
            }
            StrDict::Trie(t) => t.for_each(|id, v| f(id, v)),
        }
    }
}

impl HeapSize for StrDict {
    fn heap_bytes(&self) -> usize {
        match self {
            StrDict::Sorted(d) => d.heap_bytes(),
            StrDict::Trie(t) => t.heap_bytes(),
        }
    }
}

/// Sorted array of distinct integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntDict {
    values: Box<[i64]>,
}

impl IntDict {
    pub fn from_sorted(values: Vec<i64>) -> Result<Self> {
        for pair in values.windows(2) {
            if pair[0] >= pair[1] {
                return Err(Error::Data("dictionary input must be sorted and unique".into()));
            }
        }
        Ok(IntDict { values: values.into_boxed_slice() })
    }

    pub fn len(&self) -> u32 {
        self.values.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: u32) -> i64 {
        self.values[id as usize]
    }

    pub fn id_of(&self, value: i64) -> Option<u32> {
        self.values.binary_search(&value).ok().map(|i| i as u32)
    }

    pub fn lower_bound(&self, value: i64) -> u32 {
        self.values.partition_point(|&v| v < value) as u32
    }

    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.values.iter().copied()
    }
}

impl HeapSize for IntDict {
    fn heap_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// Sorted (by total order) array of distinct floats.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatDict {
    values: Box<[f64]>,
}

impl FloatDict {
    pub fn from_sorted(values: Vec<f64>) -> Result<Self> {
        for pair in values.windows(2) {
            if pair[0].total_cmp(&pair[1]) != std::cmp::Ordering::Less {
                return Err(Error::Data("dictionary input must be sorted and unique".into()));
            }
        }
        Ok(FloatDict { values: values.into_boxed_slice() })
    }

    pub fn len(&self) -> u32 {
        self.values.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: u32) -> f64 {
        self.values[id as usize]
    }

    pub fn id_of(&self, value: f64) -> Option<u32> {
        self.values.binary_search_by(|v| v.total_cmp(&value)).ok().map(|i| i as u32)
    }

    pub fn lower_bound(&self, value: f64) -> u32 {
        self.values.partition_point(|v| v.total_cmp(&value) == std::cmp::Ordering::Less) as u32
    }

    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }
}

impl HeapSize for FloatDict {
    fn heap_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// A dictionary grown in place by appends: a sorted `base` (ids
/// `[0, base.len())`, id order = value order) plus a `tail` of
/// later-arriving values in *append* order (ids `[base.len(), len())`).
///
/// This is the structure that makes dictionary-delta shipping sound:
/// every id the base ever handed out keeps meaning the same value, so
/// chunk codes encoded before an append never need rewriting and group
/// folds over old and new chunks merge bit-identically. The price is that
/// id order no longer equals value order — rank-based range reasoning
/// ([`GlobalDict::lower_bound`] / [`GlobalDict::range_ids`]) answers
/// `None` ("maybe") and callers fall back to row-level evaluation.
///
/// Fields are private: the only ways to obtain a tailed dictionary are
/// [`GlobalDict::extend`] (which validates types and never duplicates a
/// value) and [`GlobalDict::from_bytes`] (which re-validates both).
#[derive(Debug, Clone, PartialEq)]
pub struct TailedDict {
    base: Box<GlobalDict>,
    tail: Vec<Value>,
}

impl TailedDict {
    pub fn len(&self) -> u32 {
        self.base.len() + self.tail.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted dictionary the appends grew from.
    pub fn base(&self) -> &GlobalDict {
        &self.base
    }

    /// Appended values in id order (`tail()[i]` has id `base().len() + i`).
    pub fn tail(&self) -> &[Value] {
        &self.tail
    }

    pub fn value(&self, id: u32) -> Value {
        if id < self.base.len() {
            self.base.value(id)
        } else {
            self.tail[(id - self.base.len()) as usize].clone()
        }
    }

    /// Position of `value` within the tail, under the same equality each
    /// typed dictionary's `id_of` uses (exact for ints and strings, bit
    /// pattern for floats, numeric coercion across Int/Float).
    fn tail_position(&self, value: &Value) -> Option<usize> {
        match (self.base.data_type(), value) {
            (DataType::Int, Value::Int(x)) => self.tail_int(*x),
            (DataType::Int, Value::Float(f)) if f.fract() == 0.0 => self.tail_int(*f as i64),
            (DataType::Float, Value::Float(f)) => self.tail_float(*f),
            (DataType::Float, Value::Int(x)) => self.tail_float(*x as f64),
            (DataType::Str, Value::Str(s)) => {
                self.tail.iter().position(|t| matches!(t, Value::Str(v) if v == s))
            }
            _ => None,
        }
    }

    fn tail_int(&self, x: i64) -> Option<usize> {
        self.tail.iter().position(|t| matches!(t, Value::Int(v) if *v == x))
    }

    fn tail_float(&self, x: f64) -> Option<usize> {
        self.tail.iter().position(|t| matches!(t, Value::Float(v) if v.to_bits() == x.to_bits()))
    }

    pub fn id_of(&self, value: &Value) -> Option<u32> {
        self.base
            .id_of(value)
            .or_else(|| self.tail_position(value).map(|i| self.base.len() + i as u32))
    }
}

impl HeapSize for TailedDict {
    fn heap_bytes(&self) -> usize {
        self.base.heap_bytes()
            + self.tail.len() * std::mem::size_of::<Value>()
            + self.tail.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

/// A typed global dictionary.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalDict {
    Int(IntDict),
    Float(FloatDict),
    Str(StrDict),
    /// A sorted dictionary extended in place by appends (id order no
    /// longer equals value order; see [`TailedDict`]).
    Tailed(TailedDict),
}

impl GlobalDict {
    pub fn data_type(&self) -> DataType {
        match self {
            GlobalDict::Int(_) => DataType::Int,
            GlobalDict::Float(_) => DataType::Float,
            GlobalDict::Str(_) => DataType::Str,
            GlobalDict::Tailed(t) => t.base.data_type(),
        }
    }

    /// Number of distinct values.
    pub fn len(&self) -> u32 {
        match self {
            GlobalDict::Int(d) => d.len(),
            GlobalDict::Float(d) => d.len(),
            GlobalDict::Str(d) => d.len(),
            GlobalDict::Tailed(t) => t.len(),
        }
    }

    /// Does id order equal value order? True for every freshly built
    /// dictionary (they are sorted); false once appends grew a tail.
    /// Consumers that use integer-id comparisons as a proxy for value
    /// comparisons (range pruning, id-domain MIN/MAX) must check this and
    /// fall back to comparing values.
    pub fn is_value_ordered(&self) -> bool {
        !matches!(self, GlobalDict::Tailed(_))
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value with rank `id`.
    pub fn value(&self, id: u32) -> Value {
        match self {
            GlobalDict::Int(d) => Value::Int(d.value(id)),
            GlobalDict::Float(d) => Value::Float(d.value(id)),
            GlobalDict::Str(d) => Value::Str(d.value(id)),
            GlobalDict::Tailed(t) => t.value(id),
        }
    }

    /// Rank of `value`, if present. A type mismatch simply yields `None`
    /// (the restriction `country = 42` matches nothing).
    pub fn id_of(&self, value: &Value) -> Option<u32> {
        match (self, value) {
            (GlobalDict::Int(d), Value::Int(v)) => d.id_of(*v),
            (GlobalDict::Int(d), Value::Float(v)) if v.fract() == 0.0 => d.id_of(*v as i64),
            (GlobalDict::Float(d), Value::Float(v)) => d.id_of(*v),
            (GlobalDict::Float(d), Value::Int(v)) => d.id_of(*v as f64),
            (GlobalDict::Str(d), Value::Str(v)) => d.id_of(v),
            (GlobalDict::Tailed(t), v) => t.id_of(v),
            _ => None,
        }
    }

    /// Rank of the first dictionary entry `>= value` (used by range
    /// restrictions). A type mismatch yields `None`.
    pub fn lower_bound(&self, value: &Value) -> Option<u32> {
        match (self, value) {
            (GlobalDict::Int(d), Value::Int(v)) => Some(d.lower_bound(*v)),
            (GlobalDict::Int(d), Value::Float(v)) => {
                // First integer >= the float bound.
                Some(d.lower_bound(v.ceil() as i64))
            }
            (GlobalDict::Float(d), Value::Float(v)) => Some(d.lower_bound(*v)),
            (GlobalDict::Float(d), Value::Int(v)) => Some(d.lower_bound(*v as f64)),
            (GlobalDict::Str(d), Value::Str(v)) => match d {
                StrDict::Sorted(s) => Some(s.lower_bound(v)),
                // Tries do not support rank-of-absent-value cheaply; the
                // store keeps range-restricted fields in sorted form.
                StrDict::Trie(_) => None,
            },
            // Appended tails break the id-order-equals-value-order
            // property ranks rely on; err towards "maybe".
            (GlobalDict::Tailed(_), _) => None,
            _ => None,
        }
    }

    /// Resolve a value range to the half-open global-id interval
    /// `[lo, hi)` of matching dictionary entries.
    ///
    /// Because dictionaries are sorted, id order equals value order, so a
    /// range restriction on values is a range restriction on ids — this is
    /// what lets chunk min/max ids answer range predicates (subsuming the
    /// min/max "small materialized aggregates" technique the paper cites).
    ///
    /// Bounds are `(value, inclusive)`. Returns `None` when the dictionary
    /// cannot rank the bound (trie string dictionaries, tailed
    /// dictionaries, type mismatches). The fully unbounded range stays
    /// `Some((0, len))` even for tailed dictionaries: every id matches
    /// regardless of order.
    pub fn range_ids(
        &self,
        min: Option<&(Value, bool)>,
        max: Option<&(Value, bool)>,
    ) -> Option<(u32, u32)> {
        let lo = match min {
            None => 0,
            Some((v, inclusive)) => {
                let base = self.lower_bound(v)?;
                if !inclusive && self.id_of(v) == Some(base) {
                    base + 1
                } else {
                    base
                }
            }
        };
        let hi = match max {
            None => self.len(),
            Some((v, inclusive)) => {
                let base = self.lower_bound(v)?;
                if *inclusive && self.id_of(v) == Some(base) {
                    base + 1
                } else {
                    base
                }
            }
        };
        Some((lo, hi.max(lo)))
    }

    /// Re-encode string dictionaries as tries ("OptDicts", §3). Numeric
    /// dictionaries are untouched. A tailed dictionary optimizes its base
    /// (trie ids are rank order, so every id keeps its value).
    pub fn optimize(&self) -> Result<GlobalDict> {
        match self {
            GlobalDict::Str(d) => Ok(GlobalDict::Str(d.to_trie()?)),
            GlobalDict::Tailed(t) => Ok(GlobalDict::Tailed(TailedDict {
                base: Box::new(t.base.optimize()?),
                tail: t.tail.clone(),
            })),
            other => Ok(other.clone()),
        }
    }

    /// Append `values` in place, returning each input's global id.
    ///
    /// Values already present keep their existing id (including numeric
    /// Int/Float coercion, matching [`GlobalDict::id_of`]); genuinely new
    /// values are appended to the tail in first-seen order and receive the
    /// next ids. Existing ids are **never** renumbered — the code
    /// stability property dictionary-delta shipping relies on. Every value
    /// must match the dictionary's type exactly; `Null` is rejected.
    pub fn extend(&mut self, values: &[Value]) -> Result<Vec<u32>> {
        let dtype = self.data_type();
        let mut ids = Vec::with_capacity(values.len());
        for v in values {
            if v.data_type() != Some(dtype) {
                return Err(type_mismatch(dtype, v));
            }
            if let Some(id) = self.id_of(v) {
                ids.push(id);
                continue;
            }
            // First genuinely new value: wrap the sorted dictionary in a
            // tail in place (ids `[0, len)` keep their meaning).
            if !matches!(self, GlobalDict::Tailed(_)) {
                let placeholder = GlobalDict::Int(IntDict::from_sorted(Vec::new())?);
                let base = std::mem::replace(self, placeholder);
                *self = GlobalDict::Tailed(TailedDict { base: Box::new(base), tail: Vec::new() });
            }
            let GlobalDict::Tailed(t) = self else { unreachable!("just wrapped") };
            let id = t.base.len() + t.tail.len() as u32;
            t.tail.push(v.clone());
            ids.push(id);
        }
        Ok(ids)
    }

    /// Serialize the dictionary contents for the compressed layer:
    /// strings as len-prefixed bytes, integers as delta varints, floats as
    /// little-endian bits.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            GlobalDict::Int(d) => {
                out.push(0);
                varint::write_u64(&mut out, u64::from(d.len()));
                let mut prev = 0i64;
                for v in d.iter() {
                    varint::write_i64(&mut out, v.wrapping_sub(prev));
                    prev = v;
                }
            }
            GlobalDict::Float(d) => {
                out.push(1);
                varint::write_u64(&mut out, u64::from(d.len()));
                for v in d.iter() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            GlobalDict::Str(d) => {
                out.push(2);
                varint::write_u64(&mut out, u64::from(d.len()));
                d.for_each(|_, s| {
                    varint::write_u64(&mut out, s.len() as u64);
                    out.extend_from_slice(s.as_bytes());
                });
            }
            GlobalDict::Tailed(t) => {
                // Length-prefixed base bytes, then the tail values in id
                // order, typed like the base.
                out.push(3);
                let base = t.base.to_bytes();
                varint::write_u64(&mut out, base.len() as u64);
                out.extend_from_slice(&base);
                varint::write_u64(&mut out, t.tail.len() as u64);
                for v in &t.tail {
                    match v {
                        Value::Int(x) => varint::write_i64(&mut out, *x),
                        Value::Float(f) => out.extend_from_slice(&f.to_le_bytes()),
                        Value::Str(s) => {
                            varint::write_u64(&mut out, s.len() as u64);
                            out.extend_from_slice(s.as_bytes());
                        }
                        // extend() and from_bytes() both reject nulls.
                        Value::Null => unreachable!("tailed dictionaries hold no nulls"),
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`GlobalDict::to_bytes`]. String dictionaries come back in
    /// sorted-array form; call [`GlobalDict::optimize`] to restore a trie.
    pub fn from_bytes(bytes: &[u8]) -> Result<GlobalDict> {
        let tag = *bytes.first().ok_or_else(|| Error::Data("dict: empty buffer".into()))?;
        let mut pos = 1;
        let len = varint::read_u64(bytes, &mut pos)? as usize;
        match tag {
            0 => {
                let mut values = Vec::with_capacity(len.min(1 << 20));
                let mut prev = 0i64;
                for _ in 0..len {
                    prev = prev.wrapping_add(varint::read_i64(bytes, &mut pos)?);
                    values.push(prev);
                }
                Ok(GlobalDict::Int(IntDict::from_sorted(values)?))
            }
            1 => {
                let mut values = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    let raw = bytes
                        .get(pos..pos + 8)
                        .ok_or_else(|| Error::Data("dict: truncated float".into()))?;
                    values.push(f64::from_le_bytes(raw.try_into().expect("8 bytes")));
                    pos += 8;
                }
                Ok(GlobalDict::Float(FloatDict::from_sorted(values)?))
            }
            2 => {
                let mut values = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    let n = varint::read_u64(bytes, &mut pos)? as usize;
                    let raw = bytes
                        .get(pos..pos + n)
                        .ok_or_else(|| Error::Data("dict: truncated string".into()))?;
                    let s = std::str::from_utf8(raw)
                        .map_err(|_| Error::Data("dict: invalid UTF-8".into()))?;
                    values.push(s.into());
                    pos += n;
                }
                Ok(GlobalDict::Str(StrDict::Sorted(SortedStrDict::from_sorted(values)?)))
            }
            3 => {
                // `len` is the byte length of the serialized base here.
                let raw = bytes
                    .get(pos..pos.saturating_add(len))
                    .ok_or_else(|| Error::Data("dict: truncated tailed base".into()))?;
                pos += len;
                let base = GlobalDict::from_bytes(raw)?;
                if matches!(base, GlobalDict::Tailed(_)) {
                    return Err(Error::Data("dict: nested tailed dictionary".into()));
                }
                let dtype = base.data_type();
                let tail_len = varint::read_u64(bytes, &mut pos)? as usize;
                if tail_len == 0 {
                    return Err(Error::Data("dict: tailed dictionary with empty tail".into()));
                }
                let mut tailed = TailedDict {
                    base: Box::new(base),
                    tail: Vec::with_capacity(tail_len.min(1 << 20)),
                };
                for _ in 0..tail_len {
                    let v = match dtype {
                        DataType::Int => Value::Int(varint::read_i64(bytes, &mut pos)?),
                        DataType::Float => {
                            let raw = bytes
                                .get(pos..pos + 8)
                                .ok_or_else(|| Error::Data("dict: truncated float".into()))?;
                            pos += 8;
                            Value::Float(f64::from_le_bytes(raw.try_into().expect("8 bytes")))
                        }
                        DataType::Str => {
                            let n = varint::read_u64(bytes, &mut pos)? as usize;
                            let raw = bytes
                                .get(pos..pos.saturating_add(n))
                                .ok_or_else(|| Error::Data("dict: truncated string".into()))?;
                            pos += n;
                            let s = std::str::from_utf8(raw)
                                .map_err(|_| Error::Data("dict: invalid UTF-8".into()))?;
                            Value::Str(s.to_owned())
                        }
                    };
                    if tailed.id_of(&v).is_some() {
                        return Err(Error::Data("dict: duplicate value in tail".into()));
                    }
                    tailed.tail.push(v);
                }
                Ok(GlobalDict::Tailed(tailed))
            }
            t => Err(Error::Data(format!("dict: unknown tag {t}"))),
        }
    }
}

impl HeapSize for GlobalDict {
    fn heap_bytes(&self) -> usize {
        match self {
            GlobalDict::Int(d) => d.heap_bytes(),
            GlobalDict::Float(d) => d.heap_bytes(),
            GlobalDict::Str(d) => d.heap_bytes(),
            GlobalDict::Tailed(t) => t.heap_bytes(),
        }
    }
}

/// Build a global dictionary from a raw column and map every row to its
/// global-id.
///
/// This is the first half of the import pipeline of §2.3. All values must
/// share one type; `Null` is rejected (the stores in the paper operate on
/// denormalized, fully populated log tables).
pub fn build_dict(values: &[Value], use_trie: bool) -> Result<(GlobalDict, Vec<u32>)> {
    let first = values
        .first()
        .ok_or_else(|| Error::Data("cannot build a dictionary from an empty column".into()))?;
    let dtype = first
        .data_type()
        .ok_or_else(|| Error::Data("null values are not supported in stored columns".into()))?;

    match dtype {
        DataType::Int => {
            let mut distinct: Vec<i64> = Vec::new();
            let mut raw: Vec<i64> = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    Value::Int(x) => {
                        raw.push(*x);
                        distinct.push(*x);
                    }
                    other => return Err(type_mismatch(dtype, other)),
                }
            }
            distinct.sort_unstable();
            distinct.dedup();
            let ids = raw
                .iter()
                .map(|x| distinct.binary_search(x).expect("value was inserted") as u32)
                .collect();
            Ok((GlobalDict::Int(IntDict::from_sorted(distinct)?), ids))
        }
        DataType::Float => {
            let mut distinct: Vec<f64> = Vec::new();
            let mut raw: Vec<f64> = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    Value::Float(x) => {
                        raw.push(*x);
                        distinct.push(*x);
                    }
                    other => return Err(type_mismatch(dtype, other)),
                }
            }
            distinct.sort_unstable_by(|a, b| a.total_cmp(b));
            distinct.dedup_by(|a, b| a.to_bits() == b.to_bits());
            let ids = raw
                .iter()
                .map(|x| {
                    distinct.binary_search_by(|v| v.total_cmp(x)).expect("value was inserted")
                        as u32
                })
                .collect();
            Ok((GlobalDict::Float(FloatDict::from_sorted(distinct)?), ids))
        }
        DataType::Str => {
            // Hash-map interning first, then rank assignment: avoids a
            // comparison sort of every (possibly long, heavily duplicated)
            // row value.
            let mut intern: FxHashMap<&str, u32> = FxHashMap::default();
            let mut order: Vec<u32> = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    Value::Str(s) => {
                        let next = intern.len() as u32;
                        let slot = *intern.entry(s.as_str()).or_insert(next);
                        order.push(slot);
                    }
                    other => return Err(type_mismatch(dtype, other)),
                }
            }
            let mut distinct: Vec<(&str, u32)> =
                intern.iter().map(|(s, slot)| (*s, *slot)).collect();
            distinct.sort_unstable_by(|a, b| a.0.cmp(b.0));
            // slot -> rank translation.
            let mut rank_of_slot = vec![0u32; distinct.len()];
            for (rank, (_, slot)) in distinct.iter().enumerate() {
                rank_of_slot[*slot as usize] = rank as u32;
            }
            let ids = order.iter().map(|slot| rank_of_slot[*slot as usize]).collect();
            let sorted: Vec<Box<str>> = distinct.iter().map(|(s, _)| (*s).into()).collect();
            let dict = if use_trie {
                let refs: Vec<&str> = distinct.iter().map(|(s, _)| *s).collect();
                StrDict::Trie(TrieDict::from_sorted(&refs)?)
            } else {
                StrDict::Sorted(SortedStrDict::from_sorted(sorted)?)
            };
            Ok((GlobalDict::Str(dict), ids))
        }
    }
}

fn type_mismatch(expected: DataType, got: &Value) -> Error {
    Error::Type(format!(
        "column is {expected} but found {}",
        got.data_type().map_or_else(|| "NULL".to_owned(), |t| t.to_string())
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_dict_round_trip() {
        let values: Vec<Value> = [5i64, 3, 5, 8, 3, 3, -1].into_iter().map(Value::Int).collect();
        let (dict, ids) = build_dict(&values, false).unwrap();
        assert_eq!(dict.len(), 4); // -1, 3, 5, 8
        for (v, id) in values.iter().zip(&ids) {
            assert_eq!(&dict.value(*id), v);
        }
        assert_eq!(dict.id_of(&Value::Int(8)), Some(3));
        assert_eq!(dict.id_of(&Value::Int(99)), None);
    }

    #[test]
    fn str_dict_round_trip_both_flavours() {
        let values: Vec<Value> = ["ebay", "amazon", "ebay", "cheap flights", "amazon"]
            .iter()
            .map(|s| Value::from(*s))
            .collect();
        for use_trie in [false, true] {
            let (dict, ids) = build_dict(&values, use_trie).unwrap();
            assert_eq!(dict.len(), 3);
            for (v, id) in values.iter().zip(&ids) {
                assert_eq!(&dict.value(*id), v, "trie={use_trie}");
            }
            // Sorted ranks: amazon=0, cheap flights=1, ebay=2.
            assert_eq!(dict.id_of(&Value::from("amazon")), Some(0));
            assert_eq!(dict.id_of(&Value::from("ebay")), Some(2));
        }
    }

    #[test]
    fn float_dict_handles_total_order() {
        let values: Vec<Value> =
            [1.5f64, -0.0, 0.0, 1.5, f64::NAN].into_iter().map(Value::Float).collect();
        let (dict, ids) = build_dict(&values, false).unwrap();
        assert_eq!(dict.len(), 4); // -0.0, 0.0, 1.5, NaN
        for (v, id) in values.iter().zip(&ids) {
            assert_eq!(&dict.value(*id), v);
        }
    }

    #[test]
    fn nulls_and_mixed_types_rejected() {
        assert!(build_dict(&[Value::Null], false).is_err());
        assert!(build_dict(&[Value::Int(1), Value::from("x")], false).is_err());
        assert!(build_dict(&[], false).is_err());
    }

    #[test]
    fn id_of_type_mismatch_is_none() {
        let (dict, _) = build_dict(&[Value::Int(1), Value::Int(2)], false).unwrap();
        assert_eq!(dict.id_of(&Value::from("1")), None);
    }

    #[test]
    fn float_dict_accepts_int_literals() {
        let (dict, _) = build_dict(&[Value::Float(4.0), Value::Float(5.5)], false).unwrap();
        assert_eq!(dict.id_of(&Value::Int(4)), Some(0));
        assert_eq!(dict.lower_bound(&Value::Int(5)), Some(1));
    }

    #[test]
    fn lower_bound_semantics() {
        let (dict, _) =
            build_dict(&[Value::Int(10), Value::Int(20), Value::Int(30)], false).unwrap();
        assert_eq!(dict.lower_bound(&Value::Int(5)), Some(0));
        assert_eq!(dict.lower_bound(&Value::Int(20)), Some(1));
        assert_eq!(dict.lower_bound(&Value::Int(25)), Some(2));
        assert_eq!(dict.lower_bound(&Value::Int(99)), Some(3));
    }

    #[test]
    fn optimize_converts_strings_only() {
        let (s, _) = build_dict(&[Value::from("b"), Value::from("a")], false).unwrap();
        let opt = s.optimize().unwrap();
        assert!(matches!(opt, GlobalDict::Str(StrDict::Trie(_))));
        assert_eq!(opt.value(0), Value::from("a"));

        let (i, _) = build_dict(&[Value::Int(1)], false).unwrap();
        assert_eq!(i.optimize().unwrap(), i);
    }

    #[test]
    fn serialization_round_trips() {
        let cases: Vec<Vec<Value>> = vec![
            [1i64, 5, 5, -9, 1 << 40].iter().map(|&v| Value::Int(v)).collect(),
            [0.25f64, -1.0, 3.5].iter().map(|&v| Value::Float(v)).collect(),
            ["x", "abc", "", "zz"].iter().map(|&v| Value::from(v)).collect(),
        ];
        for values in cases {
            let (dict, _) = build_dict(&values, false).unwrap();
            let bytes = dict.to_bytes();
            let back = GlobalDict::from_bytes(&bytes).unwrap();
            assert_eq!(back.len(), dict.len());
            for id in 0..dict.len() {
                assert_eq!(back.value(id), dict.value(id));
            }
        }
    }

    #[test]
    fn trie_serialization_round_trips_via_sorted_form() {
        let values: Vec<Value> = ["ga", "de", "fr", "de"].iter().map(|&v| Value::from(v)).collect();
        let (dict, _) = build_dict(&values, true).unwrap();
        let back = GlobalDict::from_bytes(&dict.to_bytes()).unwrap();
        for id in 0..dict.len() {
            assert_eq!(back.value(id), dict.value(id));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(GlobalDict::from_bytes(&[]).is_err());
        assert!(GlobalDict::from_bytes(&[7]).is_err());
        assert!(GlobalDict::from_bytes(&[2, 1, 200]).is_err());
    }

    #[test]
    fn range_ids_semantics() {
        let (dict, _) =
            build_dict(&[Value::Int(10), Value::Int(20), Value::Int(30), Value::Int(40)], false)
                .unwrap();
        let r = |min: Option<(i64, bool)>, max: Option<(i64, bool)>| {
            dict.range_ids(
                min.map(|(v, i)| (Value::Int(v), i)).as_ref(),
                max.map(|(v, i)| (Value::Int(v), i)).as_ref(),
            )
        };
        assert_eq!(r(None, None), Some((0, 4)));
        // x > 20 -> ids {2, 3}
        assert_eq!(r(Some((20, false)), None), Some((2, 4)));
        // x >= 20 -> ids {1, 2, 3}
        assert_eq!(r(Some((20, true)), None), Some((1, 4)));
        // x < 20 -> ids {0}
        assert_eq!(r(None, Some((20, false))), Some((0, 1)));
        // x <= 20 -> ids {0, 1}
        assert_eq!(r(None, Some((20, true))), Some((0, 2)));
        // Bounds between values behave identically for both flags.
        assert_eq!(r(Some((25, false)), None), Some((2, 4)));
        assert_eq!(r(Some((25, true)), None), Some((2, 4)));
        // Empty intersections clamp to an empty interval.
        assert_eq!(r(Some((35, true)), Some((15, true))), Some((3, 3)));
    }

    #[test]
    fn range_ids_float_bounds_on_int_dict() {
        let (dict, _) =
            build_dict(&[Value::Int(10), Value::Int(20), Value::Int(30)], false).unwrap();
        // x > 19.5 -> first int >= 20 (exclusive flag irrelevant: 19.5 not present)
        let r = dict.range_ids(Some(&(Value::Float(19.5), false)), None);
        assert_eq!(r, Some((1, 3)));
        // x > 20.0 must exclude 20 itself.
        let r = dict.range_ids(Some(&(Value::Float(20.0), false)), None);
        assert_eq!(r, Some((2, 3)));
        // x >= 20.0 includes it.
        let r = dict.range_ids(Some(&(Value::Float(20.0), true)), None);
        assert_eq!(r, Some((1, 3)));
    }

    #[test]
    fn range_ids_unsupported_on_tries() {
        let (dict, _) = build_dict(&[Value::from("a"), Value::from("b")], true).unwrap();
        assert_eq!(dict.range_ids(Some(&(Value::from("a"), true)), None), None);
        // Sorted string dictionaries support ranges.
        let (sorted, _) = build_dict(&[Value::from("a"), Value::from("b")], false).unwrap();
        assert_eq!(sorted.range_ids(Some(&(Value::from("b"), true)), None), Some((1, 2)));
    }

    #[test]
    fn extend_keeps_existing_ids_and_appends_new_ones() {
        let (mut dict, _) =
            build_dict(&[Value::Int(10), Value::Int(30), Value::Int(20)], false).unwrap();
        assert!(dict.is_value_ordered());
        let before: Vec<Value> = (0..dict.len()).map(|id| dict.value(id)).collect();
        // Mix of present and new values, with a duplicate new value.
        let ids =
            dict.extend(&[Value::Int(20), Value::Int(5), Value::Int(30), Value::Int(5)]).unwrap();
        assert_eq!(ids, vec![1, 3, 2, 3], "present keep ids; new get the next id once");
        assert!(!dict.is_value_ordered());
        assert_eq!(dict.len(), 4);
        // Every pre-existing id still means the same value.
        for (id, v) in before.iter().enumerate() {
            assert_eq!(&dict.value(id as u32), v);
        }
        assert_eq!(dict.value(3), Value::Int(5));
        assert_eq!(dict.id_of(&Value::Int(5)), Some(3));
        // A second extend keeps growing the same tail.
        let ids = dict.extend(&[Value::Int(7), Value::Int(5)]).unwrap();
        assert_eq!(ids, vec![4, 3]);
        assert_eq!(dict.len(), 5);
    }

    #[test]
    fn extend_validates_types_and_handles_floats_by_bits() {
        let (mut ints, _) = build_dict(&[Value::Int(1)], false).unwrap();
        assert!(ints.extend(&[Value::from("x")]).is_err());
        assert!(ints.extend(&[Value::Null]).is_err());

        let (mut floats, _) = build_dict(&[Value::Float(1.0)], false).unwrap();
        let ids = floats.extend(&[Value::Float(-0.0), Value::Float(0.0)]).unwrap();
        assert_eq!(ids, vec![1, 2], "signed zeros are distinct values");
        assert_eq!(floats.id_of(&Value::Float(-0.0)), Some(1));
        // Numeric coercion still matches the base, like id_of.
        assert_eq!(floats.id_of(&Value::Int(1)), Some(0));
    }

    #[test]
    fn tailed_dict_errs_toward_maybe_on_ranges() {
        let (mut dict, _) =
            build_dict(&[Value::Int(10), Value::Int(20), Value::Int(30)], false).unwrap();
        dict.extend(&[Value::Int(15)]).unwrap();
        assert_eq!(dict.lower_bound(&Value::Int(15)), None);
        assert_eq!(dict.range_ids(Some(&(Value::Int(15), true)), None), None);
        // The fully unbounded range is exact regardless of id order.
        assert_eq!(dict.range_ids(None, None), Some((0, 4)));
    }

    #[test]
    fn tailed_serialization_round_trips_all_types() {
        let cases: Vec<(Vec<Value>, Vec<Value>)> = vec![
            (
                [1i64, 5, -9].iter().map(|&v| Value::Int(v)).collect(),
                [100i64, -100].iter().map(|&v| Value::Int(v)).collect(),
            ),
            (
                [0.25f64, -1.0].iter().map(|&v| Value::Float(v)).collect(),
                [f64::NAN, -0.0, 7.5].iter().map(|&v| Value::Float(v)).collect(),
            ),
            (
                ["b", "x"].iter().map(|&v| Value::from(v)).collect(),
                ["a", "zz", ""].iter().map(|&v| Value::from(v)).collect(),
            ),
        ];
        for (base, tail) in cases {
            let (mut dict, _) = build_dict(&base, false).unwrap();
            dict.extend(&tail).unwrap();
            let back = GlobalDict::from_bytes(&dict.to_bytes()).unwrap();
            assert_eq!(back.len(), dict.len());
            assert!(!back.is_value_ordered());
            for id in 0..dict.len() {
                assert_eq!(back.value(id), dict.value(id));
            }
        }
    }

    #[test]
    fn tailed_from_bytes_rejects_malformed_inputs() {
        let (mut dict, _) = build_dict(&[Value::Int(1), Value::Int(2)], false).unwrap();
        dict.extend(&[Value::Int(9)]).unwrap();
        let bytes = dict.to_bytes();
        // Truncations at every cut error, never panic.
        for cut in 0..bytes.len() {
            assert!(GlobalDict::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A tail value duplicating the base is rejected.
        let mut dup = GlobalDict::from_bytes(&bytes).unwrap();
        if let GlobalDict::Tailed(t) = &mut dup {
            t.tail[0] = Value::Int(2);
        }
        assert!(GlobalDict::from_bytes(&dup.to_bytes()).is_err(), "duplicate tail value");
        // An empty tail is rejected (a sorted dict must stay tag 0/1/2).
        let base_bytes = GlobalDict::Int(IntDict::from_sorted(vec![1, 2]).unwrap()).to_bytes();
        let mut empty_tail = vec![3u8];
        pd_compress::varint::write_u64(&mut empty_tail, base_bytes.len() as u64);
        empty_tail.extend_from_slice(&base_bytes);
        pd_compress::varint::write_u64(&mut empty_tail, 0);
        assert!(GlobalDict::from_bytes(&empty_tail).is_err(), "empty tail");
        // A nested tailed base is rejected.
        let mut nested = vec![3u8];
        pd_compress::varint::write_u64(&mut nested, bytes.len() as u64);
        nested.extend_from_slice(&bytes);
        pd_compress::varint::write_u64(&mut nested, 1);
        pd_compress::varint::write_i64(&mut nested, 42);
        assert!(GlobalDict::from_bytes(&nested).is_err(), "nested tailed base");
    }

    #[test]
    fn trie_base_extends_in_place() {
        let (mut dict, _) = build_dict(&[Value::from("de"), Value::from("fr")], true).unwrap();
        let ids = dict.extend(&[Value::from("sg"), Value::from("de")]).unwrap();
        assert_eq!(ids, vec![2, 0]);
        assert_eq!(dict.value(2), Value::from("sg"));
        // Round trip through bytes (trie base serializes via its sorted form).
        let back = GlobalDict::from_bytes(&dict.to_bytes()).unwrap();
        for id in 0..dict.len() {
            assert_eq!(back.value(id), dict.value(id));
        }
        // optimize() keeps every id's meaning.
        let opt = dict.optimize().unwrap();
        for id in 0..dict.len() {
            assert_eq!(opt.value(id), dict.value(id));
        }
    }

    #[test]
    fn trie_and_sorted_agree_on_large_dict() {
        let values: Vec<Value> = (0..3000)
            .map(|i| {
                Value::from(format!(
                    "logs.service_{}.2011-{:02}-{:02}",
                    i % 83,
                    i % 12 + 1,
                    i % 28 + 1
                ))
            })
            .collect();
        let (sorted, ids_a) = build_dict(&values, false).unwrap();
        let (trie, ids_b) = build_dict(&values, true).unwrap();
        assert_eq!(ids_a, ids_b);
        assert_eq!(sorted.len(), trie.len());
        for id in (0..sorted.len()).step_by(97) {
            assert_eq!(sorted.value(id), trie.value(id));
        }
        for v in values.iter().step_by(131) {
            assert_eq!(sorted.id_of(v), trie.id_of(v));
        }
    }
}
