//! Global dictionaries: all distinct values of a column, sorted, addressed
//! by integer rank (*global-id*) — §2.3 of the paper.
//!
//! Lookups go both ways: `value(global_id)` when materializing query
//! results (e.g. the top-10 strings after a group-by) and `id_of(value)`
//! when translating literals in `WHERE` clauses into global-ids for chunk
//! skipping.
//!
//! String dictionaries come in two flavours, mirroring the paper's §3
//! optimization step: a "canonical" sorted array with binary search, and
//! the compact 4-bit [`TrieDict`].

use crate::trie::TrieDict;
use pd_common::{DataType, Error, FxHashMap, HeapSize, Result, Value};
use pd_compress::varint;

/// Sorted array of distinct strings; rank = index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedStrDict {
    values: Box<[Box<str>]>,
}

impl SortedStrDict {
    /// Build from sorted, unique strings.
    pub fn from_sorted(values: Vec<Box<str>>) -> Result<Self> {
        for pair in values.windows(2) {
            if pair[0] >= pair[1] {
                return Err(Error::Data("dictionary input must be sorted and unique".into()));
            }
        }
        Ok(SortedStrDict { values: values.into_boxed_slice() })
    }

    pub fn len(&self) -> u32 {
        self.values.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: u32) -> &str {
        &self.values[id as usize]
    }

    pub fn id_of(&self, value: &str) -> Option<u32> {
        self.values.binary_search_by(|v| v.as_ref().cmp(value)).ok().map(|i| i as u32)
    }

    /// Rank of the first entry `>= value`.
    pub fn lower_bound(&self, value: &str) -> u32 {
        self.values.partition_point(|v| v.as_ref() < value) as u32
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(AsRef::as_ref)
    }
}

impl HeapSize for SortedStrDict {
    fn heap_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Box<str>>()
            + self.values.iter().map(|s| s.len()).sum::<usize>()
    }
}

/// String dictionary: sorted array ("canonical", §2.3) or trie ("OptDicts",
/// §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrDict {
    Sorted(SortedStrDict),
    Trie(TrieDict),
}

impl StrDict {
    pub fn len(&self) -> u32 {
        match self {
            StrDict::Sorted(d) => d.len(),
            StrDict::Trie(t) => t.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn value(&self, id: u32) -> String {
        match self {
            StrDict::Sorted(d) => d.value(id).to_owned(),
            StrDict::Trie(t) => t.value(id),
        }
    }

    pub fn id_of(&self, value: &str) -> Option<u32> {
        match self {
            StrDict::Sorted(d) => d.id_of(value),
            StrDict::Trie(t) => t.id_of(value),
        }
    }

    /// Re-encode as a trie (no-op if already one).
    pub fn to_trie(&self) -> Result<StrDict> {
        match self {
            StrDict::Sorted(d) => {
                let refs: Vec<&str> = d.iter().collect();
                Ok(StrDict::Trie(TrieDict::from_sorted(&refs)?))
            }
            StrDict::Trie(t) => Ok(StrDict::Trie(t.clone())),
        }
    }

    pub fn for_each(&self, mut f: impl FnMut(u32, &str)) {
        match self {
            StrDict::Sorted(d) => {
                for (id, v) in d.iter().enumerate() {
                    f(id as u32, v);
                }
            }
            StrDict::Trie(t) => t.for_each(|id, v| f(id, v)),
        }
    }
}

impl HeapSize for StrDict {
    fn heap_bytes(&self) -> usize {
        match self {
            StrDict::Sorted(d) => d.heap_bytes(),
            StrDict::Trie(t) => t.heap_bytes(),
        }
    }
}

/// Sorted array of distinct integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntDict {
    values: Box<[i64]>,
}

impl IntDict {
    pub fn from_sorted(values: Vec<i64>) -> Result<Self> {
        for pair in values.windows(2) {
            if pair[0] >= pair[1] {
                return Err(Error::Data("dictionary input must be sorted and unique".into()));
            }
        }
        Ok(IntDict { values: values.into_boxed_slice() })
    }

    pub fn len(&self) -> u32 {
        self.values.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: u32) -> i64 {
        self.values[id as usize]
    }

    pub fn id_of(&self, value: i64) -> Option<u32> {
        self.values.binary_search(&value).ok().map(|i| i as u32)
    }

    pub fn lower_bound(&self, value: i64) -> u32 {
        self.values.partition_point(|&v| v < value) as u32
    }

    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.values.iter().copied()
    }
}

impl HeapSize for IntDict {
    fn heap_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// Sorted (by total order) array of distinct floats.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatDict {
    values: Box<[f64]>,
}

impl FloatDict {
    pub fn from_sorted(values: Vec<f64>) -> Result<Self> {
        for pair in values.windows(2) {
            if pair[0].total_cmp(&pair[1]) != std::cmp::Ordering::Less {
                return Err(Error::Data("dictionary input must be sorted and unique".into()));
            }
        }
        Ok(FloatDict { values: values.into_boxed_slice() })
    }

    pub fn len(&self) -> u32 {
        self.values.len() as u32
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: u32) -> f64 {
        self.values[id as usize]
    }

    pub fn id_of(&self, value: f64) -> Option<u32> {
        self.values.binary_search_by(|v| v.total_cmp(&value)).ok().map(|i| i as u32)
    }

    pub fn lower_bound(&self, value: f64) -> u32 {
        self.values.partition_point(|v| v.total_cmp(&value) == std::cmp::Ordering::Less) as u32
    }

    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }
}

impl HeapSize for FloatDict {
    fn heap_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

/// A typed global dictionary.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalDict {
    Int(IntDict),
    Float(FloatDict),
    Str(StrDict),
}

impl GlobalDict {
    pub fn data_type(&self) -> DataType {
        match self {
            GlobalDict::Int(_) => DataType::Int,
            GlobalDict::Float(_) => DataType::Float,
            GlobalDict::Str(_) => DataType::Str,
        }
    }

    /// Number of distinct values.
    pub fn len(&self) -> u32 {
        match self {
            GlobalDict::Int(d) => d.len(),
            GlobalDict::Float(d) => d.len(),
            GlobalDict::Str(d) => d.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value with rank `id`.
    pub fn value(&self, id: u32) -> Value {
        match self {
            GlobalDict::Int(d) => Value::Int(d.value(id)),
            GlobalDict::Float(d) => Value::Float(d.value(id)),
            GlobalDict::Str(d) => Value::Str(d.value(id)),
        }
    }

    /// Rank of `value`, if present. A type mismatch simply yields `None`
    /// (the restriction `country = 42` matches nothing).
    pub fn id_of(&self, value: &Value) -> Option<u32> {
        match (self, value) {
            (GlobalDict::Int(d), Value::Int(v)) => d.id_of(*v),
            (GlobalDict::Int(d), Value::Float(v)) if v.fract() == 0.0 => d.id_of(*v as i64),
            (GlobalDict::Float(d), Value::Float(v)) => d.id_of(*v),
            (GlobalDict::Float(d), Value::Int(v)) => d.id_of(*v as f64),
            (GlobalDict::Str(d), Value::Str(v)) => d.id_of(v),
            _ => None,
        }
    }

    /// Rank of the first dictionary entry `>= value` (used by range
    /// restrictions). A type mismatch yields `None`.
    pub fn lower_bound(&self, value: &Value) -> Option<u32> {
        match (self, value) {
            (GlobalDict::Int(d), Value::Int(v)) => Some(d.lower_bound(*v)),
            (GlobalDict::Int(d), Value::Float(v)) => {
                // First integer >= the float bound.
                Some(d.lower_bound(v.ceil() as i64))
            }
            (GlobalDict::Float(d), Value::Float(v)) => Some(d.lower_bound(*v)),
            (GlobalDict::Float(d), Value::Int(v)) => Some(d.lower_bound(*v as f64)),
            (GlobalDict::Str(d), Value::Str(v)) => match d {
                StrDict::Sorted(s) => Some(s.lower_bound(v)),
                // Tries do not support rank-of-absent-value cheaply; the
                // store keeps range-restricted fields in sorted form.
                StrDict::Trie(_) => None,
            },
            _ => None,
        }
    }

    /// Resolve a value range to the half-open global-id interval
    /// `[lo, hi)` of matching dictionary entries.
    ///
    /// Because dictionaries are sorted, id order equals value order, so a
    /// range restriction on values is a range restriction on ids — this is
    /// what lets chunk min/max ids answer range predicates (subsuming the
    /// min/max "small materialized aggregates" technique the paper cites).
    ///
    /// Bounds are `(value, inclusive)`. Returns `None` when the dictionary
    /// cannot rank the bound (trie string dictionaries, type mismatches).
    pub fn range_ids(
        &self,
        min: Option<&(Value, bool)>,
        max: Option<&(Value, bool)>,
    ) -> Option<(u32, u32)> {
        let lo = match min {
            None => 0,
            Some((v, inclusive)) => {
                let base = self.lower_bound(v)?;
                if !inclusive && self.id_of(v) == Some(base) {
                    base + 1
                } else {
                    base
                }
            }
        };
        let hi = match max {
            None => self.len(),
            Some((v, inclusive)) => {
                let base = self.lower_bound(v)?;
                if *inclusive && self.id_of(v) == Some(base) {
                    base + 1
                } else {
                    base
                }
            }
        };
        Some((lo, hi.max(lo)))
    }

    /// Re-encode string dictionaries as tries ("OptDicts", §3). Numeric
    /// dictionaries are untouched.
    pub fn optimize(&self) -> Result<GlobalDict> {
        match self {
            GlobalDict::Str(d) => Ok(GlobalDict::Str(d.to_trie()?)),
            other => Ok(other.clone()),
        }
    }

    /// Serialize the dictionary contents for the compressed layer:
    /// strings as len-prefixed bytes, integers as delta varints, floats as
    /// little-endian bits.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            GlobalDict::Int(d) => {
                out.push(0);
                varint::write_u64(&mut out, u64::from(d.len()));
                let mut prev = 0i64;
                for v in d.iter() {
                    varint::write_i64(&mut out, v.wrapping_sub(prev));
                    prev = v;
                }
            }
            GlobalDict::Float(d) => {
                out.push(1);
                varint::write_u64(&mut out, u64::from(d.len()));
                for v in d.iter() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            GlobalDict::Str(d) => {
                out.push(2);
                varint::write_u64(&mut out, u64::from(d.len()));
                d.for_each(|_, s| {
                    varint::write_u64(&mut out, s.len() as u64);
                    out.extend_from_slice(s.as_bytes());
                });
            }
        }
        out
    }

    /// Inverse of [`GlobalDict::to_bytes`]. String dictionaries come back in
    /// sorted-array form; call [`GlobalDict::optimize`] to restore a trie.
    pub fn from_bytes(bytes: &[u8]) -> Result<GlobalDict> {
        let tag = *bytes.first().ok_or_else(|| Error::Data("dict: empty buffer".into()))?;
        let mut pos = 1;
        let len = varint::read_u64(bytes, &mut pos)? as usize;
        match tag {
            0 => {
                let mut values = Vec::with_capacity(len.min(1 << 20));
                let mut prev = 0i64;
                for _ in 0..len {
                    prev = prev.wrapping_add(varint::read_i64(bytes, &mut pos)?);
                    values.push(prev);
                }
                Ok(GlobalDict::Int(IntDict::from_sorted(values)?))
            }
            1 => {
                let mut values = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    let raw = bytes
                        .get(pos..pos + 8)
                        .ok_or_else(|| Error::Data("dict: truncated float".into()))?;
                    values.push(f64::from_le_bytes(raw.try_into().expect("8 bytes")));
                    pos += 8;
                }
                Ok(GlobalDict::Float(FloatDict::from_sorted(values)?))
            }
            2 => {
                let mut values = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    let n = varint::read_u64(bytes, &mut pos)? as usize;
                    let raw = bytes
                        .get(pos..pos + n)
                        .ok_or_else(|| Error::Data("dict: truncated string".into()))?;
                    let s = std::str::from_utf8(raw)
                        .map_err(|_| Error::Data("dict: invalid UTF-8".into()))?;
                    values.push(s.into());
                    pos += n;
                }
                Ok(GlobalDict::Str(StrDict::Sorted(SortedStrDict::from_sorted(values)?)))
            }
            t => Err(Error::Data(format!("dict: unknown tag {t}"))),
        }
    }
}

impl HeapSize for GlobalDict {
    fn heap_bytes(&self) -> usize {
        match self {
            GlobalDict::Int(d) => d.heap_bytes(),
            GlobalDict::Float(d) => d.heap_bytes(),
            GlobalDict::Str(d) => d.heap_bytes(),
        }
    }
}

/// Build a global dictionary from a raw column and map every row to its
/// global-id.
///
/// This is the first half of the import pipeline of §2.3. All values must
/// share one type; `Null` is rejected (the stores in the paper operate on
/// denormalized, fully populated log tables).
pub fn build_dict(values: &[Value], use_trie: bool) -> Result<(GlobalDict, Vec<u32>)> {
    let first = values
        .first()
        .ok_or_else(|| Error::Data("cannot build a dictionary from an empty column".into()))?;
    let dtype = first
        .data_type()
        .ok_or_else(|| Error::Data("null values are not supported in stored columns".into()))?;

    match dtype {
        DataType::Int => {
            let mut distinct: Vec<i64> = Vec::new();
            let mut raw: Vec<i64> = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    Value::Int(x) => {
                        raw.push(*x);
                        distinct.push(*x);
                    }
                    other => return Err(type_mismatch(dtype, other)),
                }
            }
            distinct.sort_unstable();
            distinct.dedup();
            let ids = raw
                .iter()
                .map(|x| distinct.binary_search(x).expect("value was inserted") as u32)
                .collect();
            Ok((GlobalDict::Int(IntDict::from_sorted(distinct)?), ids))
        }
        DataType::Float => {
            let mut distinct: Vec<f64> = Vec::new();
            let mut raw: Vec<f64> = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    Value::Float(x) => {
                        raw.push(*x);
                        distinct.push(*x);
                    }
                    other => return Err(type_mismatch(dtype, other)),
                }
            }
            distinct.sort_unstable_by(|a, b| a.total_cmp(b));
            distinct.dedup_by(|a, b| a.to_bits() == b.to_bits());
            let ids = raw
                .iter()
                .map(|x| {
                    distinct.binary_search_by(|v| v.total_cmp(x)).expect("value was inserted")
                        as u32
                })
                .collect();
            Ok((GlobalDict::Float(FloatDict::from_sorted(distinct)?), ids))
        }
        DataType::Str => {
            // Hash-map interning first, then rank assignment: avoids a
            // comparison sort of every (possibly long, heavily duplicated)
            // row value.
            let mut intern: FxHashMap<&str, u32> = FxHashMap::default();
            let mut order: Vec<u32> = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    Value::Str(s) => {
                        let next = intern.len() as u32;
                        let slot = *intern.entry(s.as_str()).or_insert(next);
                        order.push(slot);
                    }
                    other => return Err(type_mismatch(dtype, other)),
                }
            }
            let mut distinct: Vec<(&str, u32)> =
                intern.iter().map(|(s, slot)| (*s, *slot)).collect();
            distinct.sort_unstable_by(|a, b| a.0.cmp(b.0));
            // slot -> rank translation.
            let mut rank_of_slot = vec![0u32; distinct.len()];
            for (rank, (_, slot)) in distinct.iter().enumerate() {
                rank_of_slot[*slot as usize] = rank as u32;
            }
            let ids = order.iter().map(|slot| rank_of_slot[*slot as usize]).collect();
            let sorted: Vec<Box<str>> = distinct.iter().map(|(s, _)| (*s).into()).collect();
            let dict = if use_trie {
                let refs: Vec<&str> = distinct.iter().map(|(s, _)| *s).collect();
                StrDict::Trie(TrieDict::from_sorted(&refs)?)
            } else {
                StrDict::Sorted(SortedStrDict::from_sorted(sorted)?)
            };
            Ok((GlobalDict::Str(dict), ids))
        }
    }
}

fn type_mismatch(expected: DataType, got: &Value) -> Error {
    Error::Type(format!(
        "column is {expected} but found {}",
        got.data_type().map_or_else(|| "NULL".to_owned(), |t| t.to_string())
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_dict_round_trip() {
        let values: Vec<Value> = [5i64, 3, 5, 8, 3, 3, -1].into_iter().map(Value::Int).collect();
        let (dict, ids) = build_dict(&values, false).unwrap();
        assert_eq!(dict.len(), 4); // -1, 3, 5, 8
        for (v, id) in values.iter().zip(&ids) {
            assert_eq!(&dict.value(*id), v);
        }
        assert_eq!(dict.id_of(&Value::Int(8)), Some(3));
        assert_eq!(dict.id_of(&Value::Int(99)), None);
    }

    #[test]
    fn str_dict_round_trip_both_flavours() {
        let values: Vec<Value> = ["ebay", "amazon", "ebay", "cheap flights", "amazon"]
            .iter()
            .map(|s| Value::from(*s))
            .collect();
        for use_trie in [false, true] {
            let (dict, ids) = build_dict(&values, use_trie).unwrap();
            assert_eq!(dict.len(), 3);
            for (v, id) in values.iter().zip(&ids) {
                assert_eq!(&dict.value(*id), v, "trie={use_trie}");
            }
            // Sorted ranks: amazon=0, cheap flights=1, ebay=2.
            assert_eq!(dict.id_of(&Value::from("amazon")), Some(0));
            assert_eq!(dict.id_of(&Value::from("ebay")), Some(2));
        }
    }

    #[test]
    fn float_dict_handles_total_order() {
        let values: Vec<Value> =
            [1.5f64, -0.0, 0.0, 1.5, f64::NAN].into_iter().map(Value::Float).collect();
        let (dict, ids) = build_dict(&values, false).unwrap();
        assert_eq!(dict.len(), 4); // -0.0, 0.0, 1.5, NaN
        for (v, id) in values.iter().zip(&ids) {
            assert_eq!(&dict.value(*id), v);
        }
    }

    #[test]
    fn nulls_and_mixed_types_rejected() {
        assert!(build_dict(&[Value::Null], false).is_err());
        assert!(build_dict(&[Value::Int(1), Value::from("x")], false).is_err());
        assert!(build_dict(&[], false).is_err());
    }

    #[test]
    fn id_of_type_mismatch_is_none() {
        let (dict, _) = build_dict(&[Value::Int(1), Value::Int(2)], false).unwrap();
        assert_eq!(dict.id_of(&Value::from("1")), None);
    }

    #[test]
    fn float_dict_accepts_int_literals() {
        let (dict, _) = build_dict(&[Value::Float(4.0), Value::Float(5.5)], false).unwrap();
        assert_eq!(dict.id_of(&Value::Int(4)), Some(0));
        assert_eq!(dict.lower_bound(&Value::Int(5)), Some(1));
    }

    #[test]
    fn lower_bound_semantics() {
        let (dict, _) =
            build_dict(&[Value::Int(10), Value::Int(20), Value::Int(30)], false).unwrap();
        assert_eq!(dict.lower_bound(&Value::Int(5)), Some(0));
        assert_eq!(dict.lower_bound(&Value::Int(20)), Some(1));
        assert_eq!(dict.lower_bound(&Value::Int(25)), Some(2));
        assert_eq!(dict.lower_bound(&Value::Int(99)), Some(3));
    }

    #[test]
    fn optimize_converts_strings_only() {
        let (s, _) = build_dict(&[Value::from("b"), Value::from("a")], false).unwrap();
        let opt = s.optimize().unwrap();
        assert!(matches!(opt, GlobalDict::Str(StrDict::Trie(_))));
        assert_eq!(opt.value(0), Value::from("a"));

        let (i, _) = build_dict(&[Value::Int(1)], false).unwrap();
        assert_eq!(i.optimize().unwrap(), i);
    }

    #[test]
    fn serialization_round_trips() {
        let cases: Vec<Vec<Value>> = vec![
            [1i64, 5, 5, -9, 1 << 40].iter().map(|&v| Value::Int(v)).collect(),
            [0.25f64, -1.0, 3.5].iter().map(|&v| Value::Float(v)).collect(),
            ["x", "abc", "", "zz"].iter().map(|&v| Value::from(v)).collect(),
        ];
        for values in cases {
            let (dict, _) = build_dict(&values, false).unwrap();
            let bytes = dict.to_bytes();
            let back = GlobalDict::from_bytes(&bytes).unwrap();
            assert_eq!(back.len(), dict.len());
            for id in 0..dict.len() {
                assert_eq!(back.value(id), dict.value(id));
            }
        }
    }

    #[test]
    fn trie_serialization_round_trips_via_sorted_form() {
        let values: Vec<Value> = ["ga", "de", "fr", "de"].iter().map(|&v| Value::from(v)).collect();
        let (dict, _) = build_dict(&values, true).unwrap();
        let back = GlobalDict::from_bytes(&dict.to_bytes()).unwrap();
        for id in 0..dict.len() {
            assert_eq!(back.value(id), dict.value(id));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(GlobalDict::from_bytes(&[]).is_err());
        assert!(GlobalDict::from_bytes(&[7]).is_err());
        assert!(GlobalDict::from_bytes(&[2, 1, 200]).is_err());
    }

    #[test]
    fn range_ids_semantics() {
        let (dict, _) =
            build_dict(&[Value::Int(10), Value::Int(20), Value::Int(30), Value::Int(40)], false)
                .unwrap();
        let r = |min: Option<(i64, bool)>, max: Option<(i64, bool)>| {
            dict.range_ids(
                min.map(|(v, i)| (Value::Int(v), i)).as_ref(),
                max.map(|(v, i)| (Value::Int(v), i)).as_ref(),
            )
        };
        assert_eq!(r(None, None), Some((0, 4)));
        // x > 20 -> ids {2, 3}
        assert_eq!(r(Some((20, false)), None), Some((2, 4)));
        // x >= 20 -> ids {1, 2, 3}
        assert_eq!(r(Some((20, true)), None), Some((1, 4)));
        // x < 20 -> ids {0}
        assert_eq!(r(None, Some((20, false))), Some((0, 1)));
        // x <= 20 -> ids {0, 1}
        assert_eq!(r(None, Some((20, true))), Some((0, 2)));
        // Bounds between values behave identically for both flags.
        assert_eq!(r(Some((25, false)), None), Some((2, 4)));
        assert_eq!(r(Some((25, true)), None), Some((2, 4)));
        // Empty intersections clamp to an empty interval.
        assert_eq!(r(Some((35, true)), Some((15, true))), Some((3, 3)));
    }

    #[test]
    fn range_ids_float_bounds_on_int_dict() {
        let (dict, _) =
            build_dict(&[Value::Int(10), Value::Int(20), Value::Int(30)], false).unwrap();
        // x > 19.5 -> first int >= 20 (exclusive flag irrelevant: 19.5 not present)
        let r = dict.range_ids(Some(&(Value::Float(19.5), false)), None);
        assert_eq!(r, Some((1, 3)));
        // x > 20.0 must exclude 20 itself.
        let r = dict.range_ids(Some(&(Value::Float(20.0), false)), None);
        assert_eq!(r, Some((2, 3)));
        // x >= 20.0 includes it.
        let r = dict.range_ids(Some(&(Value::Float(20.0), true)), None);
        assert_eq!(r, Some((1, 3)));
    }

    #[test]
    fn range_ids_unsupported_on_tries() {
        let (dict, _) = build_dict(&[Value::from("a"), Value::from("b")], true).unwrap();
        assert_eq!(dict.range_ids(Some(&(Value::from("a"), true)), None), None);
        // Sorted string dictionaries support ranges.
        let (sorted, _) = build_dict(&[Value::from("a"), Value::from("b")], false).unwrap();
        assert_eq!(sorted.range_ids(Some(&(Value::from("b"), true)), None), Some((1, 2)));
    }

    #[test]
    fn trie_and_sorted_agree_on_large_dict() {
        let values: Vec<Value> = (0..3000)
            .map(|i| {
                Value::from(format!(
                    "logs.service_{}.2011-{:02}-{:02}",
                    i % 83,
                    i % 12 + 1,
                    i % 28 + 1
                ))
            })
            .collect();
        let (sorted, ids_a) = build_dict(&values, false).unwrap();
        let (trie, ids_b) = build_dict(&values, true).unwrap();
        assert_eq!(ids_a, ids_b);
        assert_eq!(sorted.len(), trie.len());
        for id in (0..sorted.len()).step_by(97) {
            assert_eq!(sorted.value(id), trie.value(id));
        }
        for v in values.iter().step_by(131) {
            assert_eq!(sorted.id_of(v), trie.id_of(v));
        }
    }
}
