//! Element arrays: the per-chunk sequence of chunk-ids.
//!
//! §3 "Optimize Encoding of Elements in Columns": *"If there is only 1
//! distinct value, we only need the size of the chunk [...]. In case there
//! are two distinct values a bit-set suffices [...]. We complete the picture
//! by using 1, 2, and 4 bytes per chunk-id for the cases of at most 2^8,
//! 2^16, and 2^32 distinct values."*
//!
//! [`ElementsMode::Basic`] forces the flat 32-bit representation the paper's
//! "Basic" configuration uses; [`ElementsMode::Optimized`] applies the
//! ladder above.

use pd_common::{BitVec, Error, HeapSize, Result};
use pd_compress::varint;

/// How to encode element arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ElementsMode {
    /// Always 32 bits per chunk-id ("Basic" in the paper's tables).
    Basic,
    /// Adaptive 0-bit / bit-set / u8 / u16 / u32 ("OptCols").
    #[default]
    Optimized,
}

/// A read-only sequence of chunk-ids with an adaptive representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Elements {
    /// Every row holds chunk-id 0 (one distinct value in the chunk).
    Const { len: usize },
    /// Two distinct values: chunk-ids 0/1 as a bit-set.
    Bits(BitVec),
    /// Up to 2^8 distinct values.
    U8(Box<[u8]>),
    /// Up to 2^16 distinct values.
    U16(Box<[u16]>),
    /// Up to 2^32 distinct values.
    U32(Box<[u32]>),
}

impl Elements {
    /// Encode `ids` (chunk-ids) given the chunk-dictionary cardinality.
    ///
    /// `distinct` must be an upper bound: every id must be `< distinct`.
    pub fn encode(ids: &[u32], distinct: u32, mode: ElementsMode) -> Elements {
        debug_assert!(ids.iter().all(|&id| id < distinct.max(1)));
        if mode == ElementsMode::Basic {
            return Elements::U32(ids.into());
        }
        match distinct {
            0 | 1 => Elements::Const { len: ids.len() },
            2 => Elements::Bits(ids.iter().map(|&id| id == 1).collect()),
            3..=0x100 => Elements::U8(ids.iter().map(|&id| id as u8).collect()),
            0x101..=0x1_0000 => Elements::U16(ids.iter().map(|&id| id as u16).collect()),
            _ => Elements::U32(ids.into()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Elements::Const { len } => *len,
            Elements::Bits(b) => b.len(),
            Elements::U8(v) => v.len(),
            Elements::U16(v) => v.len(),
            Elements::U32(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chunk-id at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> u32 {
        match self {
            Elements::Const { len } => {
                assert!(row < *len, "row {row} out of bounds (len {len})");
                0
            }
            Elements::Bits(b) => b.get(row) as u32,
            Elements::U8(v) => v[row] as u32,
            Elements::U16(v) => v[row] as u32,
            Elements::U32(v) => v[row],
        }
    }

    /// Iterate over all chunk-ids in row order.
    pub fn iter(&self) -> ElementsIter<'_> {
        ElementsIter { elements: self, row: 0 }
    }

    /// Borrow the underlying code storage without copying.
    ///
    /// The group-by kernels dispatch on this view once per chunk and then
    /// run a monomorphized inner loop over the raw codes, instead of paying
    /// a representation match per row ([`Elements::get`]) or a closure call
    /// per row ([`Elements::for_each`]).
    #[inline]
    pub fn codes(&self) -> CodesView<'_> {
        match self {
            Elements::Const { len } => CodesView::Const { len: *len },
            Elements::Bits(b) => CodesView::Bits(b),
            Elements::U8(v) => CodesView::U8(v),
            Elements::U16(v) => CodesView::U16(v),
            Elements::U32(v) => CodesView::U32(v),
        }
    }

    /// Visit every chunk-id via a monomorphized closure; this is the
    /// group-by inner loop (`counts[elements[row]] += 1` in §2.4), so it
    /// avoids a per-row enum dispatch.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        match self {
            Elements::Const { len } => (0..*len).for_each(|_| f(0)),
            Elements::Bits(b) => b.iter().for_each(|bit| f(bit as u32)),
            Elements::U8(v) => v.iter().for_each(|&id| f(id as u32)),
            Elements::U16(v) => v.iter().for_each(|&id| f(id as u32)),
            Elements::U32(v) => v.iter().for_each(|&id| f(id)),
        }
    }

    /// Visit maximal runs of equal chunk-ids in row order: `f(code, len)`.
    /// See [`CodesView::for_each_run`].
    #[inline]
    pub fn for_each_run(&self, f: impl FnMut(u32, usize)) {
        self.codes().for_each_run(f)
    }

    /// Serialize for the compressed storage layer. Layout:
    /// `tag:u8, varint(len), payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() + 8);
        match self {
            Elements::Const { len } => {
                out.push(0);
                varint::write_u64(&mut out, *len as u64);
            }
            Elements::Bits(b) => {
                out.push(1);
                varint::write_u64(&mut out, b.len() as u64);
                let mut byte = 0u8;
                for (i, bit) in b.iter().enumerate() {
                    byte |= (bit as u8) << (i % 8);
                    if i % 8 == 7 {
                        out.push(byte);
                        byte = 0;
                    }
                }
                if b.len() % 8 != 0 {
                    out.push(byte);
                }
            }
            Elements::U8(v) => {
                out.push(2);
                varint::write_u64(&mut out, v.len() as u64);
                out.extend_from_slice(v);
            }
            Elements::U16(v) => {
                out.push(3);
                varint::write_u64(&mut out, v.len() as u64);
                for &x in v.iter() {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Elements::U32(v) => {
                out.push(4);
                varint::write_u64(&mut out, v.len() as u64);
                for &x in v.iter() {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out
    }

    /// Inverse of [`Elements::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Elements> {
        let tag = *bytes.first().ok_or_else(|| Error::Data("elements: empty buffer".into()))?;
        let mut pos = 1;
        let len = varint::read_u64(bytes, &mut pos)? as usize;
        let need = |n: usize| -> Result<&[u8]> {
            bytes.get(pos..pos + n).ok_or_else(|| Error::Data("elements: truncated payload".into()))
        };
        match tag {
            0 => Ok(Elements::Const { len }),
            1 => {
                let payload = need(len.div_ceil(8))?;
                let mut bits = BitVec::with_capacity(len);
                for i in 0..len {
                    bits.push(payload[i / 8] >> (i % 8) & 1 == 1);
                }
                Ok(Elements::Bits(bits))
            }
            2 => Ok(Elements::U8(need(len)?.into())),
            3 => {
                let payload = need(len * 2)?;
                Ok(Elements::U16(
                    payload
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes")))
                        .collect(),
                ))
            }
            4 => {
                let payload = need(len * 4)?;
                Ok(Elements::U32(
                    payload
                        .chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                        .collect(),
                ))
            }
            t => Err(Error::Data(format!("elements: unknown tag {t}"))),
        }
    }

    /// Name of the representation, for diagnostics and bench output.
    pub fn repr_name(&self) -> &'static str {
        match self {
            Elements::Const { .. } => "const",
            Elements::Bits(_) => "bitset",
            Elements::U8(_) => "u8",
            Elements::U16(_) => "u16",
            Elements::U32(_) => "u32",
        }
    }
}

impl HeapSize for Elements {
    fn heap_bytes(&self) -> usize {
        match self {
            // §3: "we only need the size of the chunk" — O(1) overhead.
            Elements::Const { .. } => 0,
            Elements::Bits(b) => b.heap_bytes(),
            Elements::U8(v) => v.heap_bytes(),
            Elements::U16(v) => v.len() * 2,
            Elements::U32(v) => v.len() * 4,
        }
    }
}

/// A borrowed, zero-copy view of one chunk's element codes.
///
/// Obtained from [`Elements::codes`]; every variant indexes in O(1), so a
/// kernel can `match` once and keep the hot loop free of dispatch.
#[derive(Clone, Copy)]
pub enum CodesView<'a> {
    /// Every row holds code 0.
    Const {
        len: usize,
    },
    /// Two distinct values, packed bits.
    Bits(&'a BitVec),
    U8(&'a [u8]),
    U16(&'a [u16]),
    U32(&'a [u32]),
}

impl CodesView<'_> {
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            CodesView::Const { len } => *len,
            CodesView::Bits(b) => b.len(),
            CodesView::U8(v) => v.len(),
            CodesView::U16(v) => v.len(),
            CodesView::U32(v) => v.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Code at `row` (no bounds check beyond the underlying storage's).
    #[inline(always)]
    pub fn get(&self, row: usize) -> u32 {
        match self {
            CodesView::Const { .. } => 0,
            CodesView::Bits(b) => b.get(row) as u32,
            CodesView::U8(v) => v[row] as u32,
            CodesView::U16(v) => v[row] as u32,
            CodesView::U32(v) => v[row],
        }
    }

    /// Visit maximal runs of equal codes in row order: `f(code, run_len)`.
    ///
    /// This is the compressed-domain entry point of §5.2 ("working on
    /// dictionaries"): a kernel that only needs `weight(code) × run length`
    /// can skip the per-row decode entirely. The §3 ladder has no explicit
    /// RLE representation, so runs are discovered from the existing storage
    /// — O(1) for `Const`, word-at-a-time for `Bits` (an all-zero or
    /// all-one word extends the current run by 64 rows in one compare), and
    /// a linear equality scan for the byte-packed forms. Sorted or
    /// partition-clustered chunks yield long runs; the worst case degrades
    /// to one compare per row.
    ///
    /// Runs are maximal and contiguous: consecutive calls never repeat a
    /// code, lengths are nonzero and sum to `len()`.
    pub fn for_each_run(&self, mut f: impl FnMut(u32, usize)) {
        match self {
            CodesView::Const { len } => {
                if *len > 0 {
                    f(0, *len);
                }
            }
            CodesView::Bits(b) => bit_runs(b, &mut f),
            CodesView::U8(v) => slice_runs(v, &mut f),
            CodesView::U16(v) => slice_runs(v, &mut f),
            CodesView::U32(v) => slice_runs(v, &mut f),
        }
    }
}

/// Maximal-run scan over a slice of codes, monomorphized per width.
fn slice_runs<T: PartialEq + Copy + Into<u32>>(v: &[T], f: &mut impl FnMut(u32, usize)) {
    let mut i = 0;
    while i < v.len() {
        let code = v[i];
        let mut j = i + 1;
        while j < v.len() && v[j] == code {
            j += 1;
        }
        f(code.into(), j - i);
        i = j;
    }
}

/// Maximal-run scan over a bit-set, one compare per 64 rows on uniform
/// words and one shift per row only inside mixed words.
fn bit_runs(b: &BitVec, f: &mut impl FnMut(u32, usize)) {
    let len = b.len();
    if len == 0 {
        return;
    }
    let mut cur = b.get(0) as u32;
    let mut run = 0usize;
    for (wi, &w) in b.words().iter().enumerate() {
        let base = wi * 64;
        let n = (len - base).min(64);
        // Tail bits beyond `len` are zero, so mask the expectation too.
        let ones = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
        if (w & ones) == 0 && cur == 0 {
            run += n;
            continue;
        }
        if (w & ones) == ones && cur == 1 {
            run += n;
            continue;
        }
        for bit in 0..n {
            let v = ((w >> bit) & 1) as u32;
            if v == cur {
                run += 1;
            } else {
                f(cur, run);
                cur = v;
                run = 1;
            }
        }
    }
    f(cur, run);
}

/// Iterator over chunk-ids.
pub struct ElementsIter<'a> {
    elements: &'a Elements,
    row: usize,
}

impl Iterator for ElementsIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.row >= self.elements.len() {
            return None;
        }
        let id = self.elements.get(self.row);
        self.row += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.elements.len() - self.row;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids_with_distinct(distinct: u32, len: usize) -> Vec<u32> {
        (0..len).map(|i| (i as u32 * 7 + 3) % distinct.max(1)).collect()
    }

    #[test]
    fn ladder_picks_expected_representation() {
        let cases = [
            (1u32, "const"),
            (2, "bitset"),
            (3, "u8"),
            (256, "u8"),
            (257, "u16"),
            (65_536, "u16"),
            (65_537, "u32"),
        ];
        for (distinct, expected) in cases {
            let ids = ids_with_distinct(distinct, 100);
            let e = Elements::encode(&ids, distinct, ElementsMode::Optimized);
            assert_eq!(e.repr_name(), expected, "distinct={distinct}");
        }
    }

    #[test]
    fn basic_mode_always_u32() {
        let e = Elements::encode(&[0, 0, 0], 1, ElementsMode::Basic);
        assert_eq!(e.repr_name(), "u32");
    }

    #[test]
    fn get_and_iter_agree_across_reprs() {
        for distinct in [1u32, 2, 5, 300, 70_000] {
            let ids = ids_with_distinct(distinct, 500);
            let e = Elements::encode(&ids, distinct, ElementsMode::Optimized);
            assert_eq!(e.len(), 500);
            for (row, &expect) in ids.iter().enumerate() {
                assert_eq!(e.get(row), expect, "distinct={distinct} row={row}");
            }
            let collected: Vec<u32> = e.iter().collect();
            assert_eq!(collected, ids);
            let mut via_for_each = Vec::new();
            e.for_each(|id| via_for_each.push(id));
            assert_eq!(via_for_each, ids);
        }
    }

    /// Reference implementation: runs derived from the per-row iterator.
    fn naive_runs(e: &Elements) -> Vec<(u32, usize)> {
        let mut runs: Vec<(u32, usize)> = Vec::new();
        for id in e.iter() {
            match runs.last_mut() {
                Some((code, len)) if *code == id => *len += 1,
                _ => runs.push((id, 1)),
            }
        }
        runs
    }

    #[test]
    fn for_each_run_matches_naive_runs_across_reprs() {
        for distinct in [1u32, 2, 5, 300, 70_000] {
            // Lengths straddling word boundaries exercise the bit-set scan.
            for len in [0usize, 1, 63, 64, 65, 128, 500] {
                let ids = ids_with_distinct(distinct, len);
                let e = Elements::encode(&ids, distinct, ElementsMode::Optimized);
                let mut got = Vec::new();
                e.for_each_run(|code, n| got.push((code, n)));
                assert_eq!(got, naive_runs(&e), "distinct={distinct} len={len}");
                assert_eq!(got.iter().map(|&(_, n)| n).sum::<usize>(), len);
                assert!(got.iter().all(|&(_, n)| n > 0));
            }
        }
    }

    #[test]
    fn for_each_run_collapses_sorted_data() {
        // 10 runs of 100 identical ids each.
        let ids: Vec<u32> = (0..1000).map(|i| i / 100).collect();
        for mode in [ElementsMode::Optimized, ElementsMode::Basic] {
            let e = Elements::encode(&ids, 10, mode);
            let mut runs = Vec::new();
            e.for_each_run(|code, n| runs.push((code, n)));
            assert_eq!(runs, (0..10).map(|c| (c, 100)).collect::<Vec<_>>(), "{}", e.repr_name());
        }
    }

    #[test]
    fn for_each_run_bitset_uniform_words() {
        // 200 zeros, 200 ones, then alternation over a word boundary.
        let mut ids = vec![0u32; 200];
        ids.extend(std::iter::repeat_n(1u32, 200));
        ids.extend((0..100).map(|i| i % 2));
        let e = Elements::encode(&ids, 2, ElementsMode::Optimized);
        assert_eq!(e.repr_name(), "bitset");
        let mut got = Vec::new();
        e.for_each_run(|code, n| got.push((code, n)));
        assert_eq!(got, naive_runs(&e));
    }

    #[test]
    fn memory_footprint_matches_paper_ladder() {
        let n = 10_000usize;
        let const_e = Elements::encode(&vec![0; n], 1, ElementsMode::Optimized);
        assert_eq!(const_e.heap_bytes(), 0);

        let bits = Elements::encode(&ids_with_distinct(2, n), 2, ElementsMode::Optimized);
        // ⌈n/8⌉ bytes, rounded up to whole 64-bit words.
        assert!(bits.heap_bytes() <= n / 8 + 8, "bitset used {}", bits.heap_bytes());

        let u8s = Elements::encode(&ids_with_distinct(200, n), 200, ElementsMode::Optimized);
        assert_eq!(u8s.heap_bytes(), n);

        let basic = Elements::encode(&ids_with_distinct(200, n), 200, ElementsMode::Basic);
        assert_eq!(basic.heap_bytes(), n * 4);
    }

    #[test]
    fn serialization_round_trips_all_reprs() {
        for distinct in [1u32, 2, 17, 1000, 100_000] {
            for len in [0usize, 1, 7, 8, 9, 255] {
                let ids = ids_with_distinct(distinct, len);
                let e = Elements::encode(&ids, distinct, ElementsMode::Optimized);
                let bytes = e.to_bytes();
                let back = Elements::from_bytes(&bytes).expect("decode");
                assert_eq!(back, e, "distinct={distinct} len={len}");
            }
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Elements::from_bytes(&[]).is_err());
        assert!(Elements::from_bytes(&[9, 4]).is_err());
        assert!(Elements::from_bytes(&[2, 100]).is_err()); // claims 100 bytes, has none
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn const_get_checks_bounds() {
        Elements::Const { len: 3 }.get(3);
    }
}
