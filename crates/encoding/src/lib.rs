//! Dictionary and element encodings — the paper's "basic data-structures"
//! (§2.3) and their "key optimizations" (§3, §5).
//!
//! A stored column is represented doubly indirectly:
//!
//! 1. a **global dictionary** ([`GlobalDict`]) holds every distinct value of
//!    the column, sorted, addressable by integer rank (*global-id*);
//! 2. per chunk, a **chunk dictionary** ([`ChunkDict`]) maps the global-ids
//!    occurring in that chunk to dense *chunk-ids* `0..n`;
//! 3. the actual cell values are an array of chunk-ids per chunk — the
//!    **elements** ([`Elements`]), stored with 0 bits (one distinct value),
//!    a bit-set (two values), or 1/2/4 bytes per id depending on `n`.
//!
//! On top of that sit the §3/§5 optimizations: the hand-crafted 4-bit
//! [`trie`] encoding for string dictionaries, [`bloom`] filters and
//! [`subdict`] splitting so that queries touching few chunks load few
//! dictionary bytes, and [`packed`] bit-packing used by ablation benches.
//!
//! Streaming appends relax exactly one invariant: a dictionary grown in
//! place ([`dict::TailedDict`], shipped as a [`delta::TableDelta`]) keeps
//! every existing id stable but is no longer fully sorted — rank-based
//! range reasoning then answers "maybe" instead of a proof. See the crate
//! README for the representation ladder and the code stability rules.

#![forbid(unsafe_code)]

pub mod bloom;
pub mod chunk_dict;
pub mod delta;
pub mod dict;
pub mod elements;
pub mod packed;
pub mod subdict;
pub mod trie;

pub use bloom::BloomFilter;
pub use chunk_dict::ChunkDict;
pub use delta::{ColumnDelta, DictDelta, TableDelta};
pub use dict::{build_dict, FloatDict, GlobalDict, IntDict, SortedStrDict, StrDict, TailedDict};
pub use elements::{CodesView, Elements, ElementsMode};
pub use packed::PackedInts;
pub use subdict::{SubDictIndex, SubDictLayout};
pub use trie::TrieDict;
