//! Fixed-width bit packing.
//!
//! The paper's element ladder uses byte-aligned widths (0 bits, bit-set,
//! 1/2/4 bytes). `PackedInts` stores ids at *exact* bit width instead and
//! backs the "would tighter packing help?" ablation bench: it trades the
//! paper's aligned loads for ~`width/8` bytes per id.

use pd_common::HeapSize;

/// An immutable-width, append-only array of `width`-bit unsigned integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedInts {
    words: Vec<u64>,
    len: usize,
    width: u32,
}

impl PackedInts {
    /// Create an array holding values of exactly `width` bits (1..=32).
    pub fn new(width: u32) -> Self {
        assert!((1..=32).contains(&width), "width {width} out of range 1..=32");
        PackedInts { words: Vec::new(), len: 0, width }
    }

    /// Width needed to represent `max_value`.
    pub fn width_for(max_value: u32) -> u32 {
        (32 - max_value.leading_zeros()).max(1)
    }

    /// Create with capacity for `n` values.
    pub fn with_capacity(width: u32, n: usize) -> Self {
        let mut p = PackedInts::new(width);
        p.words.reserve((n * width as usize).div_ceil(64));
        p
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    /// Append a value; panics if it exceeds the width.
    pub fn push(&mut self, value: u32) {
        assert!(
            self.width == 32 || value < (1 << self.width),
            "value {value} exceeds width {}",
            self.width
        );
        let bit = self.len * self.width as usize;
        let word = bit / 64;
        let shift = (bit % 64) as u32;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= u64::from(value) << shift;
        let spill = shift + self.width;
        if spill > 64 {
            self.words.push(u64::from(value) >> (64 - shift));
        }
        self.len += 1;
    }

    /// Read the value at `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let bit = i * self.width as usize;
        let word = bit / 64;
        let shift = (bit % 64) as u32;
        let mask = if self.width == 32 { u32::MAX as u64 } else { (1u64 << self.width) - 1 };
        let mut v = self.words[word] >> shift;
        if shift + self.width > 64 {
            v |= self.words[word + 1] << (64 - shift);
        }
        (v & mask) as u32
    }

    /// Iterate all values in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl HeapSize for PackedInts {
    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

impl FromIterator<u32> for PackedInts {
    /// Collect, sizing the width from the maximum element.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let values: Vec<u32> = iter.into_iter().collect();
        let width = PackedInts::width_for(values.iter().copied().max().unwrap_or(0));
        let mut p = PackedInts::with_capacity(width, values.len());
        for v in values {
            p.push(v);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        for width in 1..=32u32 {
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            let values: Vec<u32> = (0..300u32).map(|i| i.wrapping_mul(0x9E3779B1) & mask).collect();
            let mut p = PackedInts::new(width);
            for &v in &values {
                p.push(v);
            }
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(p.get(i), v, "width={width} i={i}");
            }
            let collected: Vec<u32> = p.iter().collect();
            assert_eq!(collected, values);
        }
    }

    #[test]
    fn width_for_covers_boundaries() {
        assert_eq!(PackedInts::width_for(0), 1);
        assert_eq!(PackedInts::width_for(1), 1);
        assert_eq!(PackedInts::width_for(2), 2);
        assert_eq!(PackedInts::width_for(255), 8);
        assert_eq!(PackedInts::width_for(256), 9);
        assert_eq!(PackedInts::width_for(u32::MAX), 32);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn memory_is_close_to_optimal() {
        let p: PackedInts = (0..10_000u32).map(|i| i % 30).collect(); // 5 bits
        assert_eq!(p.width(), 5);
        let expect = (10_000 * 5) / 8;
        assert!(p.heap_bytes() < expect + expect / 4 + 64, "used {}", p.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn overflow_rejected() {
        let mut p = PackedInts::new(4);
        p.push(16);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        PackedInts::new(4).get(0);
    }

    #[test]
    fn straddling_word_boundaries() {
        // width 7: values regularly straddle u64 boundaries.
        let values: Vec<u32> = (0..1000u32).map(|i| i % 128).collect();
        let mut p = PackedInts::new(7);
        for &v in &values {
            p.push(v);
        }
        let back: Vec<u32> = p.iter().collect();
        assert_eq!(back, values);
    }
}
