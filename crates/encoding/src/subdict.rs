//! Sub-dictionaries (§5, "Further Optimizing the Global-Dictionaries").
//!
//! *"Even with the trie data-structure [...] these dictionaries still can be
//! huge in practice. When only few chunks are active for a query, there is
//! actually no need to have the entire dictionary in memory. To this end, we
//! split a dictionary up into sub-dictionaries. One of these representing
//! the most frequent values, each of the others representing values from
//! several chunks combined."*
//!
//! [`SubDictIndex`] partitions a column's global-ids into a *hot*
//! sub-dictionary (most frequent values, always resident) plus one group per
//! run of `chunks_per_group` chunks. Each group carries a Bloom filter so
//! membership probes for absent values do not force a load, and a byte cost
//! so the store can account for how many dictionary bytes a query pulled
//! from disk (feeding the Figure 5 experiment).

use crate::bloom::BloomFilter;
use pd_common::{FxHashSet, HeapSize};

/// Tuning knobs for [`SubDictIndex::build`].
#[derive(Debug, Clone, Copy)]
pub struct SubDictLayout {
    /// Fraction of the dictionary (by frequency rank) held in the
    /// always-resident hot sub-dictionary.
    pub hot_fraction: f64,
    /// How many chunks share one group sub-dictionary.
    pub chunks_per_group: usize,
    /// Bloom filter sizing per group.
    pub bloom_bits_per_key: usize,
}

impl Default for SubDictLayout {
    fn default() -> Self {
        SubDictLayout { hot_fraction: 0.01, chunks_per_group: 8, bloom_bits_per_key: 10 }
    }
}

/// One group sub-dictionary covering a contiguous chunk range.
#[derive(Debug, Clone)]
pub struct SubDictGroup {
    /// First chunk covered (inclusive).
    pub chunk_lo: u32,
    /// Last chunk covered (exclusive).
    pub chunk_hi: u32,
    /// Sorted global-ids stored in this group (hot ids excluded).
    pub ids: Vec<u32>,
    /// Estimated bytes to load this group from disk.
    pub bytes: usize,
    /// Filter over the group's global-ids.
    pub bloom: BloomFilter,
}

/// The sub-dictionary split of one column.
#[derive(Debug, Clone)]
pub struct SubDictIndex {
    /// Sorted global-ids of the always-resident hot sub-dictionary.
    pub hot_ids: Vec<u32>,
    /// Bytes of the hot sub-dictionary.
    pub hot_bytes: usize,
    /// Chunk-range groups, ascending by `chunk_lo`.
    pub groups: Vec<SubDictGroup>,
}

impl SubDictIndex {
    /// Build the split.
    ///
    /// * `chunk_ids[c]` — the global-ids occurring in chunk `c` (any order),
    /// * `freq[g]` — total occurrence count of global-id `g`,
    /// * `byte_size(g)` — storage bytes of the value with global-id `g`.
    pub fn build(
        chunk_ids: &[Vec<u32>],
        freq: &[u64],
        mut byte_size: impl FnMut(u32) -> usize,
        layout: SubDictLayout,
    ) -> SubDictIndex {
        let dict_len = freq.len();
        let hot_count = ((dict_len as f64 * layout.hot_fraction).ceil() as usize).min(dict_len);
        // Top `hot_count` ids by frequency (ties by id for determinism).
        let mut by_freq: Vec<u32> = (0..dict_len as u32).collect();
        by_freq.sort_unstable_by_key(|&g| (std::cmp::Reverse(freq[g as usize]), g));
        let mut hot_ids: Vec<u32> = by_freq[..hot_count].to_vec();
        hot_ids.sort_unstable();
        let hot_set: FxHashSet<u32> = hot_ids.iter().copied().collect();
        let hot_bytes = hot_ids.iter().map(|&g| byte_size(g)).sum();

        let group_span = layout.chunks_per_group.max(1);
        let mut groups = Vec::with_capacity(chunk_ids.len().div_ceil(group_span));
        for (gi, span) in chunk_ids.chunks(group_span).enumerate() {
            let mut ids: Vec<u32> =
                span.iter().flatten().copied().filter(|g| !hot_set.contains(g)).collect();
            ids.sort_unstable();
            ids.dedup();
            let mut bloom = BloomFilter::new(ids.len(), layout.bloom_bits_per_key);
            for &g in &ids {
                bloom.insert(&g);
            }
            let bytes = ids.iter().map(|&g| byte_size(g)).sum();
            groups.push(SubDictGroup {
                chunk_lo: (gi * group_span) as u32,
                chunk_hi: ((gi * group_span + span.len()) as u32),
                ids,
                bytes,
                bloom,
            });
        }
        SubDictIndex { hot_ids, hot_bytes, groups }
    }

    /// Indices of the groups covering any of `active_chunks`.
    pub fn groups_for_chunks<'a>(
        &'a self,
        active_chunks: &'a [u32],
    ) -> impl Iterator<Item = usize> + 'a {
        self.groups.iter().enumerate().filter_map(move |(i, g)| {
            active_chunks.iter().any(|&c| c >= g.chunk_lo && c < g.chunk_hi).then_some(i)
        })
    }

    /// Dictionary bytes that must be loaded to serve a query touching
    /// `active_chunks` (the hot sub-dictionary is already resident).
    pub fn bytes_for_chunks(&self, active_chunks: &[u32]) -> usize {
        self.groups_for_chunks(active_chunks).map(|i| self.groups[i].bytes).sum()
    }

    /// Is `global_id` possibly stored outside the hot set? `false` means
    /// no group needs loading for this id.
    pub fn may_need_group_load(&self, global_id: u32) -> bool {
        if self.hot_ids.binary_search(&global_id).is_ok() {
            return false;
        }
        self.groups.iter().any(|g| g.bloom.may_contain(&global_id))
    }
}

impl HeapSize for SubDictIndex {
    fn heap_bytes(&self) -> usize {
        self.hot_ids.len() * 4
            + self.groups.iter().map(|g| g.ids.len() * 4 + g.bloom.heap_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 chunks over a 100-value dictionary; value g occurs in chunk g % 4
    /// and ids 0..5 are everywhere (hot candidates).
    fn fixture() -> (Vec<Vec<u32>>, Vec<u64>) {
        let mut chunk_ids: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let mut freq = vec![0u64; 100];
        for g in 0..100u32 {
            chunk_ids[(g % 4) as usize].push(g);
            freq[g as usize] = 1;
        }
        for g in 0..5u32 {
            for c in chunk_ids.iter_mut() {
                if !c.contains(&g) {
                    c.push(g);
                }
            }
            freq[g as usize] = 1000;
        }
        (chunk_ids, freq)
    }

    #[test]
    fn hot_set_captures_most_frequent() {
        let (chunks, freq) = fixture();
        let layout =
            SubDictLayout { hot_fraction: 0.05, chunks_per_group: 2, ..Default::default() };
        let idx = SubDictIndex::build(&chunks, &freq, |_| 10, layout);
        assert_eq!(idx.hot_ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(idx.hot_bytes, 50);
        // Hot ids never require a group load.
        for g in 0..5u32 {
            assert!(!idx.may_need_group_load(g));
        }
    }

    #[test]
    fn groups_cover_all_chunks_without_overlap() {
        let (chunks, freq) = fixture();
        let idx = SubDictIndex::build(
            &chunks,
            &freq,
            |_| 1,
            SubDictLayout { chunks_per_group: 3, ..Default::default() },
        );
        assert_eq!(idx.groups.len(), 2); // chunks 0..3 and 3..4
        assert_eq!((idx.groups[0].chunk_lo, idx.groups[0].chunk_hi), (0, 3));
        assert_eq!((idx.groups[1].chunk_lo, idx.groups[1].chunk_hi), (3, 4));
    }

    #[test]
    fn few_active_chunks_load_few_bytes() {
        let (chunks, freq) = fixture();
        let layout =
            SubDictLayout { hot_fraction: 0.05, chunks_per_group: 1, ..Default::default() };
        let idx = SubDictIndex::build(&chunks, &freq, |_| 7, layout);
        let all: Vec<u32> = (0..4).collect();
        let full = idx.bytes_for_chunks(&all);
        let one = idx.bytes_for_chunks(&[2]);
        assert!(one < full / 2, "one-chunk load {one} vs full {full}");
        assert_eq!(idx.bytes_for_chunks(&[]), 0);
    }

    #[test]
    fn bloom_has_no_false_negatives_for_group_ids() {
        let (chunks, freq) = fixture();
        let idx = SubDictIndex::build(&chunks, &freq, |_| 1, SubDictLayout::default());
        for g in 5..100u32 {
            assert!(idx.may_need_group_load(g), "id {g} must probe a group");
        }
    }

    #[test]
    fn group_ids_exclude_hot_and_are_sorted() {
        let (chunks, freq) = fixture();
        let layout =
            SubDictLayout { hot_fraction: 0.05, chunks_per_group: 2, ..Default::default() };
        let idx = SubDictIndex::build(&chunks, &freq, |_| 1, layout);
        for g in &idx.groups {
            assert!(g.ids.windows(2).all(|w| w[0] < w[1]));
            for id in &g.ids {
                assert!(idx.hot_ids.binary_search(id).is_err());
            }
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let idx = SubDictIndex::build(&[], &[], |_| 1, SubDictLayout::default());
        assert!(idx.hot_ids.is_empty());
        assert!(idx.groups.is_empty());
        assert_eq!(idx.bytes_for_chunks(&[0, 1, 2]), 0);
    }
}
