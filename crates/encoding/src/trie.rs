//! The hand-crafted 4-bit trie for string global-dictionaries.
//!
//! §3 "Optimize Global-Dictionaries": *"We have implemented a high
//! performance trie data-structure which is built on a handcrafted encoding
//! stored in a large byte array. [...] the inner nodes are chosen to
//! represent 4 bit parts of the represented strings [...]. On lookup one can
//! afford to iterate over all children of each node along the path [...]
//! at most 16 operations per node."*
//!
//! This implementation stores a path-compressed 16-ary trie over the
//! *nibbles* (4-bit halves, high first) of the UTF-8 bytes in one contiguous
//! byte array. It supports both lookup directions the paper requires:
//!
//! - string → global-id ([`TrieDict::id_of`]): descend by nibble, summing
//!   the terminal counts of skipped earlier siblings — the rank falls out of
//!   the walk;
//! - global-id → string ([`TrieDict::value`]): descend by comparing the
//!   remaining rank against per-child terminal counts (≤ 16 operations per
//!   node, exactly the trade the paper describes).
//!
//! ### Node encoding
//!
//! Nodes are serialized in preorder. Each node is:
//!
//! ```text
//! flags:u8                  // bit0: a string ends at this node
//! label_len:varint          // nibble count of the path-compressed label
//! label:ceil(label_len/2)B  // packed nibbles, high first
//! child_mask:u16 LE         // which of the 16 nibble branches exist
//! per child (ascending):    // varint(subtree_bytes), varint(subtree_terminals)
//! children...               // the child subtrees, in order
//! ```

use pd_common::{Error, HeapSize, Result};
use pd_compress::varint;

/// A read-only string dictionary encoded as a 4-bit trie in one byte array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrieDict {
    bytes: Box<[u8]>,
    len: u32,
}

const FLAG_TERMINAL: u8 = 1;

#[inline]
fn nibble(bytes: &[u8], i: usize) -> u8 {
    let b = bytes[i / 2];
    if i.is_multiple_of(2) {
        b >> 4
    } else {
        b & 0x0f
    }
}

#[inline]
fn nibble_len(bytes: &[u8]) -> usize {
    bytes.len() * 2
}

/// In-memory node used only while building.
struct BuildNode {
    /// Path-compressed label, as nibbles.
    label: Vec<u8>,
    terminal: bool,
    /// `(branch_nibble, child)`, ascending by nibble.
    children: Vec<(u8, BuildNode)>,
    /// Terminal count of this subtree (filled bottom-up).
    terminals: u32,
    /// Encoded byte size of this subtree (filled bottom-up).
    encoded_size: usize,
}

impl TrieDict {
    /// Build from strings that are **sorted and unique**.
    ///
    /// The global dictionary invariant (§2.3: "values are stored in a sorted
    /// manner") makes this the natural construction path; unsorted or
    /// duplicated input is an error.
    pub fn from_sorted<S: AsRef<str>>(values: &[S]) -> Result<TrieDict> {
        for pair in values.windows(2) {
            if pair[0].as_ref() >= pair[1].as_ref() {
                return Err(Error::Data(format!(
                    "trie input must be sorted and unique, got `{}` before `{}`",
                    pair[0].as_ref(),
                    pair[1].as_ref()
                )));
            }
        }
        if values.is_empty() {
            return Ok(TrieDict { bytes: Box::default(), len: 0 });
        }
        let byte_views: Vec<&[u8]> = values.iter().map(|s| s.as_ref().as_bytes()).collect();
        let mut root = build_node(&byte_views, 0);
        finalize(&mut root);
        let mut bytes = Vec::with_capacity(root.encoded_size);
        serialize(&root, &mut bytes);
        debug_assert_eq!(bytes.len(), root.encoded_size);
        Ok(TrieDict { bytes: bytes.into_boxed_slice(), len: values.len() as u32 })
    }

    /// Number of strings stored.
    pub fn len(&self) -> u32 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rank (global-id) of `value`, if present.
    pub fn id_of(&self, value: &str) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let target = value.as_bytes();
        let target_nibs = nibble_len(target);
        let mut pos = 0usize;
        let mut i = 0usize; // nibbles of `target` consumed
        let mut rank = 0u32;
        loop {
            let node = Node::parse(&self.bytes, pos);
            // Match the path-compressed label.
            for k in 0..node.label_len {
                if i >= target_nibs || nibble(target, i) != node.label_nibble(k) {
                    return None;
                }
                i += 1;
            }
            if i == target_nibs {
                return node.terminal.then_some(rank);
            }
            if node.terminal {
                rank += 1;
            }
            let branch = nibble(target, i);
            let mut child_pos = node.children_start;
            let mut found = None;
            for (nib, size, terminals) in node.children() {
                if nib == branch {
                    found = Some(child_pos);
                    break;
                }
                rank += terminals;
                child_pos += size;
            }
            pos = found?;
            i += 1;
        }
    }

    /// The string with rank `id`. Panics if `id >= len()`.
    pub fn value(&self, id: u32) -> String {
        assert!(id < self.len, "global-id {id} out of bounds (len {})", self.len);
        let mut target = id;
        let mut pos = 0usize;
        let mut nibbles: Vec<u8> = Vec::with_capacity(32);
        loop {
            let node = Node::parse(&self.bytes, pos);
            for k in 0..node.label_len {
                nibbles.push(node.label_nibble(k));
            }
            if node.terminal {
                if target == 0 {
                    return nibbles_to_string(&nibbles);
                }
                target -= 1;
            }
            let mut child_pos = node.children_start;
            let mut descended = false;
            for (nib, size, terminals) in node.children() {
                if target < terminals {
                    nibbles.push(nib);
                    pos = child_pos;
                    descended = true;
                    break;
                }
                target -= terminals;
                child_pos += size;
            }
            assert!(descended, "corrupt trie: rank {id} not found");
        }
    }

    /// Visit `(id, value)` for every entry in ascending order.
    ///
    /// A single DFS — much cheaper than `len()` independent
    /// [`TrieDict::value`] lookups when exporting or re-encoding the
    /// dictionary.
    pub fn for_each(&self, mut f: impl FnMut(u32, &str)) {
        if self.len == 0 {
            return;
        }
        let mut next_id = 0u32;
        let mut prefix: Vec<u8> = Vec::with_capacity(32);
        self.dfs(0, &mut prefix, &mut next_id, &mut f);
        debug_assert_eq!(next_id, self.len);
    }

    fn dfs(
        &self,
        pos: usize,
        prefix: &mut Vec<u8>,
        next_id: &mut u32,
        f: &mut impl FnMut(u32, &str),
    ) {
        let node = Node::parse(&self.bytes, pos);
        let label_start = prefix.len();
        for k in 0..node.label_len {
            prefix.push(node.label_nibble(k));
        }
        if node.terminal {
            let s = nibbles_to_string(prefix);
            f(*next_id, &s);
            *next_id += 1;
        }
        let mut child_pos = node.children_start;
        for (nib, size, _) in node.children() {
            prefix.push(nib);
            self.dfs(child_pos, prefix, next_id, f);
            prefix.pop();
            child_pos += size;
        }
        prefix.truncate(label_start);
    }

    /// The raw encoded byte array (its length is the memory footprint the
    /// §3 experiment reports).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl HeapSize for TrieDict {
    fn heap_bytes(&self) -> usize {
        self.bytes.len()
    }
}

fn nibbles_to_string(nibbles: &[u8]) -> String {
    debug_assert!(nibbles.len().is_multiple_of(2), "string must end on a byte boundary");
    let bytes: Vec<u8> = nibbles.chunks_exact(2).map(|p| p[0] << 4 | p[1]).collect();
    String::from_utf8(bytes).expect("trie stores valid UTF-8")
}

/// Parsed view of one encoded node.
struct Node<'a> {
    bytes: &'a [u8],
    terminal: bool,
    label_len: usize,
    label_start: usize,
    child_mask: u16,
    /// Offset of the child metadata (varint pairs).
    meta_start: usize,
    /// Offset of the first child's encoding.
    children_start: usize,
}

impl<'a> Node<'a> {
    fn parse(bytes: &'a [u8], pos: usize) -> Node<'a> {
        let flags = bytes[pos];
        let mut cursor = pos + 1;
        let label_len = varint::read_u64(bytes, &mut cursor).expect("valid trie") as usize;
        let label_start = cursor;
        cursor += label_len.div_ceil(2);
        let child_mask = u16::from_le_bytes([bytes[cursor], bytes[cursor + 1]]);
        cursor += 2;
        let meta_start = cursor;
        // Skip the metadata varints to find where children begin.
        for _ in 0..child_mask.count_ones() {
            varint::read_u64(bytes, &mut cursor).expect("valid trie");
            varint::read_u64(bytes, &mut cursor).expect("valid trie");
        }
        Node {
            bytes,
            terminal: flags & FLAG_TERMINAL != 0,
            label_len,
            label_start,
            child_mask,
            meta_start,
            children_start: cursor,
        }
    }

    #[inline]
    fn label_nibble(&self, k: usize) -> u8 {
        let b = self.bytes[self.label_start + k / 2];
        if k.is_multiple_of(2) {
            b >> 4
        } else {
            b & 0x0f
        }
    }

    /// Iterate `(branch_nibble, subtree_bytes, subtree_terminals)` ascending.
    fn children(&self) -> impl Iterator<Item = (u8, usize, u32)> + '_ {
        let mut cursor = self.meta_start;
        (0..16u8).filter(move |n| self.child_mask & (1 << n) != 0).map(move |n| {
            let size = varint::read_u64(self.bytes, &mut cursor).expect("valid trie") as usize;
            let terminals = varint::read_u64(self.bytes, &mut cursor).expect("valid trie") as u32;
            (n, size, terminals)
        })
    }
}

/// Recursively build the radix tree for the sorted range `strings`, whose
/// elements all share (and have consumed) `depth` nibbles.
fn build_node(strings: &[&[u8]], depth: usize) -> BuildNode {
    debug_assert!(!strings.is_empty());
    let first = strings[0];
    let last = strings[strings.len() - 1];

    // Path compression: the label is the longest common nibble prefix of the
    // range. Because the range is sorted, LCP(first, last) covers it.
    let mut end = depth;
    let max = nibble_len(first).min(nibble_len(last));
    while end < max && nibble(first, end) == nibble(last, end) {
        end += 1;
    }
    let label: Vec<u8> = (depth..end).map(|i| nibble(first, i)).collect();

    let terminal = nibble_len(first) == end;
    let rest = if terminal { &strings[1..] } else { strings };

    let mut children: Vec<(u8, BuildNode)> = Vec::new();
    let mut lo = 0;
    while lo < rest.len() {
        let branch = nibble(rest[lo], end);
        let mut hi = lo + 1;
        while hi < rest.len() && nibble(rest[hi], end) == branch {
            hi += 1;
        }
        children.push((branch, build_node(&rest[lo..hi], end + 1)));
        lo = hi;
    }
    BuildNode { label, terminal, children, terminals: 0, encoded_size: 0 }
}

/// Bottom-up pass computing subtree terminal counts and encoded sizes.
fn finalize(node: &mut BuildNode) {
    let mut terminals = node.terminal as u32;
    let mut size = 1 + varint::len_u64(node.label.len() as u64) + node.label.len().div_ceil(2) + 2;
    for (_, child) in &mut node.children {
        finalize(child);
        terminals += child.terminals;
        size += varint::len_u64(child.encoded_size as u64)
            + varint::len_u64(u64::from(child.terminals))
            + child.encoded_size;
    }
    node.terminals = terminals;
    node.encoded_size = size;
}

fn serialize(node: &BuildNode, out: &mut Vec<u8>) {
    out.push(if node.terminal { FLAG_TERMINAL } else { 0 });
    varint::write_u64(out, node.label.len() as u64);
    for pair in node.label.chunks(2) {
        let hi = pair[0] << 4;
        let lo = if pair.len() == 2 { pair[1] } else { 0 };
        out.push(hi | lo);
    }
    let mut mask = 0u16;
    for (nib, _) in &node.children {
        mask |= 1 << nib;
    }
    out.extend_from_slice(&mask.to_le_bytes());
    for (_, child) in &node.children {
        varint::write_u64(out, child.encoded_size as u64);
        varint::write_u64(out, u64::from(child.terminals));
    }
    for (_, child) in &node.children {
        serialize(child, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(values: &[&str]) -> TrieDict {
        let mut sorted: Vec<&str> = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        TrieDict::from_sorted(&sorted).expect("build trie")
    }

    #[test]
    fn paper_example_dictionary() {
        // The search_string dictionary of Figure 1.
        let values = [
            "ab in den Urlaub",
            "amazon",
            "cheap flights",
            "cheap tickets",
            "chaussures",
            "ebay",
            "faschingskostüme",
            "immobilienscout",
            "karnevalskostüme",
            "la redoute",
            "pages jaunes",
            "voyages snfc",
            "yellow pages",
        ];
        let mut sorted: Vec<&str> = values.to_vec();
        sorted.sort_unstable();
        let trie = TrieDict::from_sorted(&sorted).unwrap();
        assert_eq!(trie.len(), 13);
        for (id, v) in sorted.iter().enumerate() {
            assert_eq!(trie.id_of(v), Some(id as u32), "value {v}");
            assert_eq!(trie.value(id as u32), *v, "id {id}");
        }
        assert_eq!(trie.id_of("la red"), None);
        assert_eq!(trie.id_of("la redoute!"), None);
        assert_eq!(trie.id_of(""), None);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = TrieDict::from_sorted::<&str>(&[]).unwrap();
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.id_of("x"), None);

        let one = build(&["hello"]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.id_of("hello"), Some(0));
        assert_eq!(one.value(0), "hello");
    }

    #[test]
    fn empty_string_is_storable() {
        let t = build(&["", "a", "ab"]);
        assert_eq!(t.id_of(""), Some(0));
        assert_eq!(t.id_of("a"), Some(1));
        assert_eq!(t.id_of("ab"), Some(2));
        assert_eq!(t.value(0), "");
        assert_eq!(t.value(1), "a");
        assert_eq!(t.value(2), "ab");
    }

    #[test]
    fn prefix_chains() {
        // Strings that are prefixes of each other stress the terminal-
        // in-the-middle-of-a-path case.
        let t = build(&["a", "aa", "aaa", "aaaa", "ab", "b"]);
        let sorted = ["a", "aa", "aaa", "aaaa", "ab", "b"];
        for (id, v) in sorted.iter().enumerate() {
            assert_eq!(t.id_of(v), Some(id as u32));
            assert_eq!(t.value(id as u32), *v);
        }
        assert_eq!(t.id_of("aaaaa"), None);
    }

    #[test]
    fn unsorted_input_rejected() {
        assert!(TrieDict::from_sorted(&["b", "a"]).is_err());
        assert!(TrieDict::from_sorted(&["a", "a"]).is_err());
    }

    #[test]
    fn unicode_strings_round_trip() {
        let t = build(&["Ärger", "auto", "kostüme", "règle", "日本語", "中文"]);
        let mut values: Vec<&str> = vec!["Ärger", "auto", "kostüme", "règle", "日本語", "中文"];
        values.sort_unstable();
        for (id, v) in values.iter().enumerate() {
            assert_eq!(t.id_of(v), Some(id as u32), "{v}");
            assert_eq!(t.value(id as u32), *v);
        }
    }

    #[test]
    fn for_each_visits_in_order() {
        let values: Vec<String> =
            (0..500).map(|i| format!("table_{:04}_2011-12-{:02}", i % 97, i % 28 + 1)).collect();
        let mut sorted: Vec<&str> = values.iter().map(String::as_str).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let t = TrieDict::from_sorted(&sorted).unwrap();
        let mut seen = Vec::new();
        t.for_each(|id, s| {
            assert_eq!(id as usize, seen.len());
            seen.push(s.to_owned());
        });
        assert_eq!(seen, sorted);
    }

    #[test]
    fn shared_prefixes_compress_well() {
        // Date-suffixed table names (the paper's motivating case): the trie
        // must be much smaller than the raw concatenated strings.
        let values: Vec<String> =
            (0..20_000).map(|i| format!("warehouse.revenue.daily_rollup_v2.{:05}", i)).collect();
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let t = TrieDict::from_sorted(&refs).unwrap();
        let raw: usize = values.iter().map(|s| s.len()).sum();
        assert!(t.heap_bytes() < raw / 3, "trie {} bytes vs raw {} bytes", t.heap_bytes(), raw);
        // Spot-check correctness at the edges.
        assert_eq!(t.id_of(&values[0]), Some(0));
        assert_eq!(t.id_of(&values[19_999]), Some(19_999));
        assert_eq!(t.value(12_345), values[12_345]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn value_bounds_checked() {
        build(&["a"]).value(1);
    }
}
