//! Randomized properties of the Bloom filter and its wire codec, in the
//! style of `pd-dist`'s `frame_properties.rs`: filters travel inside shard
//! metadata (`Load`/`Attach` acks), so the codec must round-trip
//! bit-identically, never lose a key (no false negatives survive a round
//! trip), and never panic on corrupt bytes — truncation, bit flips and
//! outright garbage are all an `Err`, not UB or an out-of-bounds probe.

use pd_common::rng::Rng;
use pd_common::wire::{from_bytes, to_bytes};
use pd_encoding::BloomFilter;

/// A filter with a random (but reproducible) key population.
fn random_filter(rng: &mut Rng) -> (BloomFilter, Vec<u64>) {
    let expected = rng.range_usize(0, 500);
    let bits_per_key = rng.range_usize(0, 16);
    let mut filter = BloomFilter::new(expected, bits_per_key);
    let keys: Vec<u64> = (0..rng.range_usize(0, 600)).map(|_| rng.next_u64()).collect();
    for key in &keys {
        filter.insert(key);
    }
    (filter, keys)
}

#[test]
fn codec_round_trips_with_no_false_negatives() {
    let mut rng = Rng::seed_from_u64(0xb100_0001);
    for case in 0..64 {
        let (filter, keys) = random_filter(&mut rng);
        let bytes = to_bytes(&filter);
        let back: BloomFilter = from_bytes(&bytes).unwrap();
        assert_eq!(back, filter, "case {case}");
        // The no-false-negative guarantee must hold through the codec:
        // every inserted key still probes true on the decoded filter.
        for key in &keys {
            assert!(back.may_contain(key), "case {case}: false negative for {key} after decode");
        }
    }
}

#[test]
fn truncations_error_never_panic() {
    let mut rng = Rng::seed_from_u64(0xb100_0002);
    for case in 0..16 {
        let (filter, _) = random_filter(&mut rng);
        let bytes = to_bytes(&filter);
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<BloomFilter>(&bytes[..cut]).is_err(),
                "case {case}: truncation at {cut} must be an error"
            );
        }
    }
}

#[test]
fn bit_flips_decode_or_error_but_never_break_invariants() {
    // A single flipped bit may still decode (flips inside the word array
    // are indistinguishable from a different filter) — but whatever comes
    // back must uphold the probe invariants: in-range `k`, power-of-two
    // `bits`, and a word count that makes every probe in-bounds (checked
    // implicitly by probing — a violation would panic the index).
    let mut rng = Rng::seed_from_u64(0xb100_0003);
    for case in 0..32 {
        let (filter, _) = random_filter(&mut rng);
        let bytes = to_bytes(&filter);
        let flip = rng.range_usize(0, bytes.len() * 8);
        let mut bad = bytes.clone();
        bad[flip / 8] ^= 1 << (flip % 8);
        if let Ok(back) = from_bytes::<BloomFilter>(&bad) {
            assert!(back.bit_count().is_power_of_two(), "case {case}");
            for probe in 0..64u64 {
                let _ = back.may_contain(&probe); // must not panic
            }
        }
    }
}

#[test]
fn garbage_bytes_never_panic() {
    let mut rng = Rng::seed_from_u64(0xb100_0004);
    for case in 0..256 {
        let len = rng.range_usize(0, 200);
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        if let Ok(back) = from_bytes::<BloomFilter>(&garbage) {
            // Vanishingly unlikely, but if it decodes it must be usable.
            assert!(back.bit_count().is_power_of_two(), "case {case}");
            let _ = back.may_contain(&0u64);
        }
    }
}

#[test]
fn oversized_claims_are_rejected_not_allocated() {
    // A frame claiming 2^63 bits with no words behind it must be an error
    // at the length check, not a giant allocation or a probe out of range.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(1u64 << 63).to_le_bytes()); // bits
    bytes.extend_from_slice(&4u32.to_le_bytes()); // k
    bytes.extend_from_slice(&1u64.to_le_bytes()); // word count claim
    bytes.extend_from_slice(&0u64.to_le_bytes()); // one actual word
    assert!(from_bytes::<BloomFilter>(&bytes).is_err());
}
