//! Randomized properties for the dictionary / element / trie invariants,
//! driven by a seeded PRNG so failures reproduce exactly.

use pd_common::rng::Rng;
use pd_common::Value;
use pd_encoding::{build_dict, ChunkDict, Elements, ElementsMode, PackedInts, TrieDict};

/// The double indirection must reconstruct the original column exactly:
/// dict(ids[row]) == values[row] (§2.3's "synchronously iterating").
#[test]
fn dict_ids_reconstruct_column() {
    let mut rng = Rng::seed_from_u64(0xd1c7_0001);
    for case in 0..64 {
        let use_trie = rng.chance(0.5);
        let n = rng.range_usize(1, 200);
        let values: Vec<Value> = (0..n)
            .map(|_| {
                let len = rng.range_usize(0, 12);
                let s: String = (0..len)
                    .map(|_| char::from_u32(rng.range_u64(0x20, 0x7f) as u32).unwrap())
                    .collect();
                Value::from(s)
            })
            .collect();
        let (dict, ids) = build_dict(&values, use_trie).unwrap();
        assert_eq!(ids.len(), values.len(), "case {case}");
        for (v, &id) in values.iter().zip(&ids) {
            assert_eq!(&dict.value(id), v, "case {case}");
            assert_eq!(dict.id_of(v), Some(id), "case {case}");
        }
        // Ranks are dense and the dictionary is sorted.
        for id in 1..dict.len() {
            assert!(dict.value(id - 1) < dict.value(id), "case {case}");
        }
    }
}

#[test]
fn int_dict_reconstructs_column() {
    let mut rng = Rng::seed_from_u64(0xd1c7_0002);
    for _ in 0..64 {
        let n = rng.range_usize(1, 300);
        let col: Vec<Value> = (0..n).map(|_| Value::Int(rng.next_u64() as i64)).collect();
        let (dict, ids) = build_dict(&col, false).unwrap();
        for (v, &id) in col.iter().zip(&ids) {
            assert_eq!(&dict.value(id), v);
        }
    }
}

/// Trie and sorted array are two encodings of the same mapping.
#[test]
fn trie_is_equivalent_to_sorted_array() {
    let mut rng = Rng::seed_from_u64(0xd1c7_0003);
    for case in 0..64 {
        let n = rng.range_usize(1, 100);
        let mut raw: Vec<String> = (0..n)
            .map(|_| {
                let len = rng.range_usize(0, 10);
                (0..len).map(|_| (b'a' + rng.range_u64(0, 26) as u8) as char).collect()
            })
            .collect();
        raw.sort_unstable();
        raw.dedup();
        let sorted: Vec<&str> = raw.iter().map(String::as_str).collect();
        let trie = TrieDict::from_sorted(&sorted).unwrap();
        assert_eq!(trie.len() as usize, sorted.len(), "case {case}");
        for (rank, s) in sorted.iter().enumerate() {
            assert_eq!(trie.id_of(s), Some(rank as u32), "case {case}");
            assert_eq!(trie.value(rank as u32), *s, "case {case}");
        }
        // Probes for absent values return None.
        for s in ["zzzz-absent", "", "a-"] {
            if !raw.iter().any(|r| r == s) {
                assert_eq!(trie.id_of(s), None, "case {case} probe {s:?}");
            }
        }
    }
}

/// Elements encodings are lossless for every representation the ladder can
/// pick, and serialization round-trips.
#[test]
fn elements_encodings_are_lossless() {
    let mut rng = Rng::seed_from_u64(0xd1c7_0004);
    for case in 0..64 {
        let distinct = rng.range_u64(1, 70_000) as u32;
        let len = rng.range_usize(0, 400);
        let ids: Vec<u32> =
            (0..len).map(|i| (i as u32).wrapping_mul(2654435761) % distinct).collect();
        for mode in [ElementsMode::Basic, ElementsMode::Optimized] {
            let e = Elements::encode(&ids, distinct, mode);
            assert_eq!(e.len(), len, "case {case}");
            let back: Vec<u32> = e.iter().collect();
            assert_eq!(back, ids, "case {case}");
            let decoded = Elements::from_bytes(&e.to_bytes()).unwrap();
            assert_eq!(decoded, e, "case {case}");
            // The borrowed code view agrees with get() row by row.
            let view = e.codes();
            for (row, &id) in ids.iter().enumerate() {
                assert_eq!(view.get(row), id, "case {case} row {row}");
            }
        }
    }
}

/// Chunk dictionary membership agrees with a naive set check.
#[test]
fn chunk_dict_membership() {
    let mut rng = Rng::seed_from_u64(0xd1c7_0005);
    for case in 0..64 {
        let mut ids: Vec<u32> =
            (0..rng.range_usize(0, 200)).map(|_| rng.next_u64() as u32).collect();
        ids.sort_unstable();
        ids.dedup();
        let dict = ChunkDict::from_sorted(ids.clone()).unwrap();
        let set: std::collections::HashSet<u32> = ids.iter().copied().collect();
        let probes: Vec<u32> = (0..rng.range_usize(0, 50))
            .map(|_| {
                if rng.chance(0.5) && !ids.is_empty() {
                    ids[rng.range_usize(0, ids.len())] // present value
                } else {
                    rng.next_u64() as u32
                }
            })
            .collect();
        for &p in &probes {
            assert_eq!(dict.chunk_id_of(p).is_some(), set.contains(&p), "case {case}");
        }
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_unstable();
        sorted_probes.dedup();
        assert_eq!(
            dict.contains_any(&sorted_probes),
            sorted_probes.iter().any(|p| set.contains(p)),
            "case {case}"
        );
        let back = ChunkDict::from_bytes(&dict.to_bytes()).unwrap();
        assert_eq!(back, dict, "case {case}");
    }
}

#[test]
fn packed_ints_round_trip() {
    let mut rng = Rng::seed_from_u64(0xd1c7_0006);
    for _ in 0..64 {
        let width_cap = 1u64 << rng.range_u64(1, 33);
        let values: Vec<u32> =
            (0..rng.range_usize(0, 500)).map(|_| rng.range_u64(0, width_cap) as u32).collect();
        let p: PackedInts = values.iter().copied().collect();
        let back: Vec<u32> = p.iter().collect();
        assert_eq!(back, values);
    }
}
