//! Property tests for the dictionary / element / trie invariants.

use pd_encoding::{build_dict, ChunkDict, Elements, ElementsMode, PackedInts, TrieDict};
use proptest::prelude::*;
use pd_common::Value;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The double indirection must reconstruct the original column exactly:
    /// dict(ids[row]) == values[row] (§2.3's "synchronously iterating").
    #[test]
    fn dict_ids_reconstruct_column(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..200),
        use_trie in any::<bool>(),
    ) {
        let values: Vec<Value> = raw
            .iter()
            .map(|bytes| Value::from(String::from_utf8_lossy(bytes).into_owned()))
            .collect();
        let (dict, ids) = build_dict(&values, use_trie).unwrap();
        prop_assert_eq!(ids.len(), values.len());
        for (v, &id) in values.iter().zip(&ids) {
            prop_assert_eq!(&dict.value(id), v);
            prop_assert_eq!(dict.id_of(v), Some(id));
        }
        // Ranks are dense and the dictionary is sorted.
        for id in 1..dict.len() {
            prop_assert!(dict.value(id - 1) < dict.value(id));
        }
    }

    #[test]
    fn int_dict_reconstructs_column(values in proptest::collection::vec(any::<i64>(), 1..300)) {
        let col: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        let (dict, ids) = build_dict(&col, false).unwrap();
        for (v, &id) in col.iter().zip(&ids) {
            prop_assert_eq!(&dict.value(id), v);
        }
    }

    /// Trie and sorted array are two encodings of the same mapping.
    #[test]
    fn trie_is_equivalent_to_sorted_array(
        raw in proptest::collection::hash_set("[a-z]{0,10}", 1..100),
    ) {
        let mut sorted: Vec<&str> = raw.iter().map(String::as_str).collect();
        sorted.sort_unstable();
        let trie = TrieDict::from_sorted(&sorted).unwrap();
        prop_assert_eq!(trie.len() as usize, sorted.len());
        for (rank, s) in sorted.iter().enumerate() {
            prop_assert_eq!(trie.id_of(s), Some(rank as u32));
            prop_assert_eq!(trie.value(rank as u32), *s);
        }
        // Probes for absent values return None.
        for s in ["zzzz-absent", "", "a-"] {
            if !raw.contains(s) {
                prop_assert_eq!(trie.id_of(s), None);
            }
        }
    }

    /// Elements encodings are lossless for every representation the ladder
    /// can pick, and serialization round-trips.
    #[test]
    fn elements_encodings_are_lossless(
        distinct in 1u32..70_000,
        len in 0usize..400,
    ) {
        let ids: Vec<u32> = (0..len).map(|i| (i as u32).wrapping_mul(2654435761) % distinct).collect();
        for mode in [ElementsMode::Basic, ElementsMode::Optimized] {
            let e = Elements::encode(&ids, distinct, mode);
            prop_assert_eq!(e.len(), len);
            let back: Vec<u32> = e.iter().collect();
            prop_assert_eq!(&back, &ids);
            let decoded = Elements::from_bytes(&e.to_bytes()).unwrap();
            prop_assert_eq!(decoded, e);
        }
    }

    /// Chunk dictionary membership agrees with a naive set check.
    #[test]
    fn chunk_dict_membership(
        mut ids in proptest::collection::vec(any::<u32>(), 0..200),
        probes in proptest::collection::vec(any::<u32>(), 0..50),
    ) {
        ids.sort_unstable();
        ids.dedup();
        let dict = ChunkDict::from_sorted(ids.clone()).unwrap();
        let set: std::collections::HashSet<u32> = ids.iter().copied().collect();
        for &p in &probes {
            prop_assert_eq!(dict.chunk_id_of(p).is_some(), set.contains(&p));
        }
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_unstable();
        sorted_probes.dedup();
        prop_assert_eq!(
            dict.contains_any(&sorted_probes),
            sorted_probes.iter().any(|p| set.contains(p))
        );
        let back = ChunkDict::from_bytes(&dict.to_bytes()).unwrap();
        prop_assert_eq!(back, dict);
    }

    #[test]
    fn packed_ints_round_trip(values in proptest::collection::vec(any::<u32>(), 0..500)) {
        let p: PackedInts = values.iter().copied().collect();
        let back: Vec<u32> = p.iter().collect();
        prop_assert_eq!(back, values);
    }
}
