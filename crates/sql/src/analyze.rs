//! Semantic analysis: from a parsed [`Query`] to an executable shape.
//!
//! The engine executes *group-by queries*: zero or more group keys (scalar
//! expressions, possibly materialized virtual fields) plus one or more
//! aggregates. Analysis resolves aliases (the paper's Query 2 groups by the
//! alias `date`), checks that non-aggregate select items appear in
//! `GROUP BY`, maps `ORDER BY` onto output columns, and extracts the
//! [`Restriction`] tree that drives chunk skipping.

use crate::ast::*;
use crate::restriction::Restriction;
use pd_common::{Error, Result};

/// Where an output column comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputCol {
    /// `keys[i]`.
    Key(usize),
    /// `aggs[i]`.
    Agg(usize),
}

/// An analyzed, executable query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    /// Source table (None when the query reads a `UNION ALL` of
    /// sub-queries, as the distributed rewrite produces).
    pub table: Option<String>,
    /// Group-by key expressions (aliases resolved).
    pub keys: Vec<Expr>,
    /// Aggregates, in select-list order.
    pub aggs: Vec<AggExpr>,
    /// Output columns: `(name, source)` in select-list order.
    pub output: Vec<(String, OutputCol)>,
    /// Full row-level filter (`WHERE`), if any.
    pub filter: Option<Expr>,
    /// The same filter normalized for chunk skipping.
    pub restriction: Restriction,
    /// `HAVING`, rewritten to reference output column names.
    pub having: Option<Expr>,
    /// `(output column index, descending)` sort keys.
    pub order_by: Vec<(usize, bool)>,
    pub limit: Option<usize>,
}

impl AnalyzedQuery {
    /// Names of the output columns, in order.
    pub fn output_names(&self) -> Vec<String> {
        self.output.iter().map(|(n, _)| n.clone()).collect()
    }
}

/// Analyze a parsed query.
pub fn analyze(query: &Query) -> Result<AnalyzedQuery> {
    let table = match &query.from {
        TableRef::Table(name) => Some(name.clone()),
        TableRef::UnionAll(_) => None,
    };

    // Alias → scalar expression (aggregate aliases resolve to the aggregate
    // itself, handled separately below).
    let scalar_alias = |name: &str| -> Option<&Expr> {
        query.select.iter().find_map(|item| match (&item.alias, &item.expr) {
            (Some(a), SelectExpr::Scalar(e)) if a == name => Some(e),
            _ => None,
        })
    };

    // Resolve GROUP BY entries: a bare column that names an alias means the
    // aliased expression (paper Query 2: `GROUP BY date`).
    let mut keys: Vec<Expr> = Vec::with_capacity(query.group_by.len());
    for g in &query.group_by {
        let resolved = match g.as_column() {
            Some(name) => scalar_alias(name).cloned().unwrap_or_else(|| g.clone()),
            None => g.clone(),
        };
        if !keys.contains(&resolved) {
            keys.push(resolved);
        }
    }

    // Select list → outputs.
    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut output: Vec<(String, OutputCol)> = Vec::with_capacity(query.select.len());
    for item in &query.select {
        let name = item.output_name();
        if output.iter().any(|(n, _)| *n == name) {
            return Err(Error::Schema(format!("duplicate output column `{name}`")));
        }
        match &item.expr {
            SelectExpr::Aggregate(a) => {
                aggs.push(a.clone());
                output.push((name, OutputCol::Agg(aggs.len() - 1)));
            }
            SelectExpr::Scalar(e) => {
                let idx = keys.iter().position(|k| k == e).ok_or_else(|| {
                    Error::Schema(format!(
                        "select expression `{e}` must appear in GROUP BY (keys: {})",
                        keys.iter().map(|k| k.to_string()).collect::<Vec<_>>().join(", ")
                    ))
                })?;
                output.push((name, OutputCol::Key(idx)));
            }
        }
    }
    if aggs.is_empty() && keys.is_empty() {
        return Err(Error::Unsupported(
            "queries must aggregate or group (plain projections are outside the engine's SQL subset)"
                .into(),
        ));
    }

    // ORDER BY → output column indices.
    let mut order_by = Vec::with_capacity(query.order_by.len());
    for key in &query.order_by {
        let idx = resolve_output(&key.expr, query, &output)?;
        order_by.push((idx, key.desc));
    }

    // HAVING → expression over output column names.
    let having = match &query.having {
        None => None,
        Some(h) => Some(rewrite_having(h, query, &output)?),
    };

    let restriction = query.where_clause.as_ref().map_or(Restriction::True, Restriction::from_expr);

    Ok(AnalyzedQuery {
        table,
        keys,
        aggs,
        output,
        filter: query.where_clause.clone(),
        restriction,
        having,
        order_by,
        limit: query.limit,
    })
}

/// Find the output column an ORDER BY / HAVING expression refers to: by
/// alias, by structural match with a select item, or by matching an
/// aggregate call like `count(*)`.
fn resolve_output(expr: &Expr, query: &Query, output: &[(String, OutputCol)]) -> Result<usize> {
    // 1. Alias or output-name match.
    if let Some(name) = expr.as_column() {
        if let Some(idx) = output.iter().position(|(n, _)| n == name) {
            return Ok(idx);
        }
    }
    // 2. Structural match against select expressions.
    for (idx, item) in query.select.iter().enumerate() {
        let matches = match &item.expr {
            SelectExpr::Scalar(e) => e == expr,
            SelectExpr::Aggregate(a) => expr_matches_agg(expr, a),
        };
        if matches {
            return Ok(idx);
        }
    }
    Err(Error::Schema(format!(
        "ORDER BY / HAVING expression `{expr}` does not match any output column"
    )))
}

/// Does `count(*)`-style call expression denote aggregate `a`?
fn expr_matches_agg(expr: &Expr, a: &AggExpr) -> bool {
    let Expr::Call { name, args } = expr else {
        return false;
    };
    let func = match name.as_str() {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        _ => return false,
    };
    if func != a.func || a.distinct {
        return false;
    }
    match (&a.arg, args.as_slice()) {
        (None, [Expr::Column(star)]) => star == "*",
        (Some(arg), [e]) => arg == e,
        _ => false,
    }
}

/// Rewrite a HAVING expression so every reference to a select item becomes
/// a bare `Column(output_name)` the executor can resolve against result
/// rows.
fn rewrite_having(expr: &Expr, query: &Query, output: &[(String, OutputCol)]) -> Result<Expr> {
    if let Ok(idx) = resolve_output(expr, query, output) {
        return Ok(Expr::Column(output[idx].0.clone()));
    }
    Ok(match expr {
        Expr::Column(_) | Expr::Literal(_) => expr.clone(),
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_having(a, query, output)).collect::<Result<_>>()?,
        },
        Expr::Unary { op, expr: inner } => {
            Expr::Unary { op: *op, expr: Box::new(rewrite_having(inner, query, output)?) }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rewrite_having(lhs, query, output)?),
            rhs: Box::new(rewrite_having(rhs, query, output)?),
        },
        Expr::InList { expr: inner, list, negated } => Expr::InList {
            expr: Box::new(rewrite_having(inner, query, output)?),
            list: list.iter().map(|e| rewrite_having(e, query, output)).collect::<Result<_>>()?,
            negated: *negated,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn analyzed(sql: &str) -> AnalyzedQuery {
        analyze(&parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn query1_shape() {
        let a = analyzed(
            "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;",
        );
        assert_eq!(a.table.as_deref(), Some("data"));
        assert_eq!(a.keys, vec![Expr::column("country")]);
        assert_eq!(a.aggs, vec![AggExpr::count_star()]);
        assert_eq!(a.output[0], ("country".into(), OutputCol::Key(0)));
        assert_eq!(a.output[1], ("c".into(), OutputCol::Agg(0)));
        assert_eq!(a.order_by, vec![(1, true)]);
        assert_eq!(a.limit, Some(10));
    }

    #[test]
    fn query2_alias_resolution() {
        let a = analyzed(
            "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data
             GROUP BY date ORDER BY date ASC LIMIT 10;",
        );
        // GROUP BY date resolves to the aliased expression.
        assert_eq!(a.keys, vec![Expr::call("date", vec![Expr::column("timestamp")])]);
        assert_eq!(a.aggs.len(), 2);
        assert_eq!(a.order_by, vec![(0, false)]);
        assert_eq!(
            a.output_names(),
            vec!["date".to_owned(), "COUNT(*)".to_owned(), "SUM(latency)".to_owned()]
        );
    }

    #[test]
    fn global_aggregation_without_group_by() {
        let a = analyzed("SELECT COUNT(*), SUM(latency) FROM data WHERE country = 'DE'");
        assert!(a.keys.is_empty());
        assert_eq!(a.aggs.len(), 2);
        assert!(matches!(a.restriction, Restriction::In { .. }));
    }

    #[test]
    fn ungrouped_scalar_rejected() {
        let err = analyze(&parse_query("SELECT country, COUNT(*) FROM data").unwrap()).unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }

    #[test]
    fn plain_projection_rejected() {
        let err = analyze(&parse_query("SELECT country FROM data").unwrap());
        // `SELECT country FROM data` without GROUP BY: country isn't in any
        // group key list.
        assert!(err.is_err());
    }

    #[test]
    fn order_by_structural_match() {
        let a =
            analyzed("SELECT country, COUNT(*) FROM data GROUP BY country ORDER BY COUNT(*) DESC");
        assert_eq!(a.order_by, vec![(1, true)]);
        let a = analyzed(
            "SELECT date(timestamp) FROM data GROUP BY date(timestamp) ORDER BY date(timestamp)",
        );
        assert_eq!(a.order_by, vec![(0, false)]);
    }

    #[test]
    fn order_by_unknown_rejected() {
        let err = analyze(
            &parse_query("SELECT country, COUNT(*) c FROM data GROUP BY country ORDER BY zz")
                .unwrap(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn having_rewrites_aggregates_to_output_names() {
        let a = analyzed(
            "SELECT country, COUNT(*) as c FROM data GROUP BY country HAVING COUNT(*) > 5",
        );
        assert_eq!(
            a.having.unwrap().to_string(),
            "(c > 5)",
            "HAVING must reference the output column"
        );
        let a = analyzed("SELECT country, COUNT(*) as c FROM data GROUP BY country HAVING c > 5 AND country != 'ZZ'");
        assert_eq!(a.having.unwrap().to_string(), r#"((c > 5) AND (country != "ZZ"))"#);
    }

    #[test]
    fn duplicate_output_names_rejected() {
        let err =
            analyze(&parse_query("SELECT country, country FROM data GROUP BY country").unwrap());
        assert!(err.is_err());
    }

    #[test]
    fn union_all_from_has_no_table() {
        let a = analyzed(
            "SELECT a, SUM(x) FROM
               ((SELECT a, SUM(x) as x FROM S1 GROUP BY a)
                UNION ALL
                (SELECT a, SUM(x) as x FROM S2 GROUP BY a))
             GROUP BY a;",
        );
        assert_eq!(a.table, None);
    }

    #[test]
    fn restriction_extracted() {
        let a = analyzed(
            r#"SELECT search_string, COUNT(*) as c FROM data
               WHERE search_string IN ("la redoute", "voyages sncf")
               GROUP BY search_string"#,
        );
        assert!(matches!(a.restriction, Restriction::In { ref values, .. } if values.len() == 2));
        assert!(a.filter.is_some());
    }
}
