//! Abstract syntax for the supported SQL subset.
//!
//! `Display` implementations render *canonical* SQL: a fixed spelling with
//! normalized keywords, quoting and parenthesization. The canonical text of
//! an expression is the identity of its materialized virtual field (§5 of
//! the paper: expressions are computed once and stored like columns, keyed
//! by the expression itself).

use pd_common::Value;
use std::fmt;

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(String),
    /// Literal constant.
    Literal(Value),
    /// Scalar function call, e.g. `date(timestamp)`.
    Call { name: String, args: Vec<Expr> },
    /// Unary operator.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator.
    Binary { op: BinaryOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
}

impl Expr {
    pub fn column(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    pub fn literal(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { name: name.into(), args }
    }

    /// Is this a bare column reference?
    pub fn as_column(&self) -> Option<&str> {
        match self {
            Expr::Column(c) => Some(c),
            _ => None,
        }
    }

    /// Column names referenced anywhere in this expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => {
                if !out.iter().any(|o| o == c) {
                    out.push(c.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Call { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Unary { expr, .. } => expr.referenced_columns(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.referenced_columns(out);
                rhs.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
        }
    }

    /// The canonical text, used as virtual-field key.
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    /// Parser precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => 4,
            BinaryOp::Add | BinaryOp::Sub => 5,
            BinaryOp::Mul | BinaryOp::Div => 6,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

/// Aggregate functions supported by the engine; all except count-distinct
/// are algebraic and therefore mergeable across the §4 execution tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// An aggregate expression in a select list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
    /// `COUNT(DISTINCT x)` — computed approximately, per §5.
    pub distinct: bool,
}

impl AggExpr {
    pub fn count_star() -> AggExpr {
        AggExpr { func: AggFunc::Count, arg: None, distinct: false }
    }
}

/// One select-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: SelectExpr,
    pub alias: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectExpr {
    Scalar(Expr),
    Aggregate(AggExpr),
}

impl SelectItem {
    /// The output column name: the alias if given, the canonical expression
    /// text otherwise.
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            SelectExpr::Scalar(e) => e.canonical(),
            SelectExpr::Aggregate(a) => agg_to_string(a),
        }
    }
}

/// `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub desc: bool,
}

/// The `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table.
    Table(String),
    /// `(q1 UNION ALL q2 ...)` — the shape the §4 distributed rewrite
    /// produces.
    UnionAll(Vec<Query>),
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Vec<SelectItem>,
    pub from: TableRef,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
}

fn agg_to_string(a: &AggExpr) -> String {
    match (&a.arg, a.distinct) {
        (None, _) => format!("{}(*)", a.func.name()),
        (Some(e), false) => format!("{}({e})", a.func.name()),
        (Some(e), true) => format!("{}(DISTINCT {e})", a.func.name()),
    }
}

fn quote_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        if ch == '"' || ch == '\\' {
            out.push('\\');
        }
        out.push(ch);
    }
    out.push('"');
    out
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(Value::Str(s)) => write!(f, "{}", quote_str(s)),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            // Self-parenthesized so unary nodes stay unambiguous inside
            // arithmetic in the canonical text.
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "(NOT ({expr}))"),
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "(-({expr}))"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::InList { expr, list, negated } => {
                // Outer parentheses keep the canonical text unambiguous
                // when an IN expression nests inside arithmetic.
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", agg_to_string(self))
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.expr {
            SelectExpr::Scalar(e) => write!(f, "{e}")?,
            SelectExpr::Aggregate(a) => write!(f, "{a}")?,
        }
        if let Some(alias) = &self.alias {
            write!(f, " AS {alias}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table(name) => write!(f, "{name}"),
            TableRef::UnionAll(queries) => {
                write!(f, "(")?;
                for (i, q) in queries.iter().enumerate() {
                    if i > 0 {
                        write!(f, " UNION ALL ")?;
                    }
                    write!(f, "({q})")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.desc { " DESC" } else { " ASC" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_rendering_is_stable() {
        let e = Expr::call("date", vec![Expr::column("timestamp")]);
        assert_eq!(e.canonical(), "date(timestamp)");
        let cmp = Expr::binary(BinaryOp::Gt, Expr::column("latency"), Expr::literal(100i64));
        assert_eq!(cmp.canonical(), "(latency > 100)");
    }

    #[test]
    fn string_literals_are_quoted_and_escaped() {
        let e = Expr::literal(r#"say "hi" \ bye"#);
        assert_eq!(e.to_string(), r#""say \"hi\" \\ bye""#);
    }

    #[test]
    fn in_list_rendering() {
        let e = Expr::InList {
            expr: Box::new(Expr::column("search_string")),
            list: vec![Expr::literal("la redoute"), Expr::literal("voyages sncf")],
            negated: false,
        };
        assert_eq!(e.to_string(), r#"(search_string IN ("la redoute", "voyages sncf"))"#);
    }

    #[test]
    fn output_names_use_alias_then_canonical() {
        let aliased = SelectItem {
            expr: SelectExpr::Aggregate(AggExpr::count_star()),
            alias: Some("c".into()),
        };
        assert_eq!(aliased.output_name(), "c");
        let bare = SelectItem { expr: SelectExpr::Scalar(Expr::column("country")), alias: None };
        assert_eq!(bare.output_name(), "country");
        let agg = SelectItem { expr: SelectExpr::Aggregate(AggExpr::count_star()), alias: None };
        assert_eq!(agg.output_name(), "COUNT(*)");
    }

    #[test]
    fn referenced_columns_deduplicate() {
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::column("x"),
            Expr::binary(BinaryOp::Mul, Expr::column("x"), Expr::column("y")),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["x".to_owned(), "y".to_owned()]);
    }

    #[test]
    fn query_display_round_readable() {
        let q = Query {
            select: vec![
                SelectItem { expr: SelectExpr::Scalar(Expr::column("country")), alias: None },
                SelectItem {
                    expr: SelectExpr::Aggregate(AggExpr::count_star()),
                    alias: Some("c".into()),
                },
            ],
            from: TableRef::Table("data".into()),
            where_clause: None,
            group_by: vec![Expr::column("country")],
            having: None,
            order_by: vec![OrderKey { expr: Expr::column("c"), desc: true }],
            limit: Some(10),
        };
        assert_eq!(
            q.to_string(),
            "SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC LIMIT 10"
        );
    }
}
