//! Wire codecs for expressions, restrictions and analyzed queries.
//!
//! Queries cross the §4 process boundary fully *decoded*: the driver
//! parses and analyzes once, and the [`AnalyzedQuery`] — group-by keys,
//! aggregates, output mapping, restriction tree — travels as bytes. No
//! worker re-parses SQL on any hop, and merge servers read the
//! [`Restriction`] directly to prune subtrees whose shard metadata cannot
//! match.
//!
//! Expressions are recursive, and the wire contract says corrupt bytes
//! must yield `Err`, never a crash: a hand-crafted frame of nested unary
//! operators costs only two bytes per level, so an unbounded recursive
//! decode could blow the stack long before running out of input. Decoding
//! therefore tracks an explicit depth and fails past [`MAX_DEPTH`] — far
//! deeper than any query the parser itself would produce.

use crate::analyze::{AnalyzedQuery, OutputCol};
use crate::ast::{AggExpr, AggFunc, BinaryOp, Expr, UnaryOp};
use crate::restriction::Restriction;
use pd_common::wire::{Decode, Encode, Reader};
use pd_common::{Error, Result, Value};

/// Maximum nesting for decoded expression / restriction trees.
pub const MAX_DEPTH: usize = 256;

fn depth_guard(depth: usize) -> Result<()> {
    if depth > MAX_DEPTH {
        return Err(Error::Data(format!("wire: expression nesting exceeds {MAX_DEPTH}")));
    }
    Ok(())
}

const EXPR_COLUMN: u8 = 0;
const EXPR_LITERAL: u8 = 1;
const EXPR_CALL: u8 = 2;
const EXPR_UNARY: u8 = 3;
const EXPR_BINARY: u8 = 4;
const EXPR_IN_LIST: u8 = 5;

impl Encode for UnaryOp {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            UnaryOp::Not => 0,
            UnaryOp::Neg => 1,
        });
    }
}

impl Decode for UnaryOp {
    fn decode(r: &mut Reader<'_>) -> Result<UnaryOp> {
        match r.u8()? {
            0 => Ok(UnaryOp::Not),
            1 => Ok(UnaryOp::Neg),
            other => Err(Error::Data(format!("wire: invalid unary-op tag {other}"))),
        }
    }
}

impl Encode for BinaryOp {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            BinaryOp::Add => 0,
            BinaryOp::Sub => 1,
            BinaryOp::Mul => 2,
            BinaryOp::Div => 3,
            BinaryOp::Eq => 4,
            BinaryOp::Ne => 5,
            BinaryOp::Lt => 6,
            BinaryOp::Le => 7,
            BinaryOp::Gt => 8,
            BinaryOp::Ge => 9,
            BinaryOp::And => 10,
            BinaryOp::Or => 11,
        });
    }
}

impl Decode for BinaryOp {
    fn decode(r: &mut Reader<'_>) -> Result<BinaryOp> {
        Ok(match r.u8()? {
            0 => BinaryOp::Add,
            1 => BinaryOp::Sub,
            2 => BinaryOp::Mul,
            3 => BinaryOp::Div,
            4 => BinaryOp::Eq,
            5 => BinaryOp::Ne,
            6 => BinaryOp::Lt,
            7 => BinaryOp::Le,
            8 => BinaryOp::Gt,
            9 => BinaryOp::Ge,
            10 => BinaryOp::And,
            11 => BinaryOp::Or,
            other => return Err(Error::Data(format!("wire: invalid binary-op tag {other}"))),
        })
    }
}

impl Encode for Expr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Expr::Column(name) => {
                out.push(EXPR_COLUMN);
                name.encode(out);
            }
            Expr::Literal(value) => {
                out.push(EXPR_LITERAL);
                value.encode(out);
            }
            Expr::Call { name, args } => {
                out.push(EXPR_CALL);
                name.encode(out);
                args.encode(out);
            }
            Expr::Unary { op, expr } => {
                out.push(EXPR_UNARY);
                op.encode(out);
                expr.encode(out);
            }
            Expr::Binary { op, lhs, rhs } => {
                out.push(EXPR_BINARY);
                op.encode(out);
                lhs.encode(out);
                rhs.encode(out);
            }
            Expr::InList { expr, list, negated } => {
                out.push(EXPR_IN_LIST);
                expr.encode(out);
                list.encode(out);
                negated.encode(out);
            }
        }
    }
}

impl Decode for Expr {
    fn decode(r: &mut Reader<'_>) -> Result<Expr> {
        decode_expr(r, 0)
    }
}

fn decode_expr(r: &mut Reader<'_>, depth: usize) -> Result<Expr> {
    depth_guard(depth)?;
    Ok(match r.u8()? {
        EXPR_COLUMN => Expr::Column(String::decode(r)?),
        EXPR_LITERAL => Expr::Literal(Value::decode(r)?),
        EXPR_CALL => {
            let name = String::decode(r)?;
            Expr::Call { name, args: decode_expr_vec(r, depth + 1)? }
        }
        EXPR_UNARY => {
            let op = UnaryOp::decode(r)?;
            Expr::Unary { op, expr: Box::new(decode_expr(r, depth + 1)?) }
        }
        EXPR_BINARY => {
            let op = BinaryOp::decode(r)?;
            let lhs = Box::new(decode_expr(r, depth + 1)?);
            let rhs = Box::new(decode_expr(r, depth + 1)?);
            Expr::Binary { op, lhs, rhs }
        }
        EXPR_IN_LIST => {
            let expr = Box::new(decode_expr(r, depth + 1)?);
            let list = decode_expr_vec(r, depth + 1)?;
            let negated = bool::decode(r)?;
            Expr::InList { expr, list, negated }
        }
        other => return Err(Error::Data(format!("wire: invalid expr tag {other}"))),
    })
}

fn decode_expr_vec(r: &mut Reader<'_>, depth: usize) -> Result<Vec<Expr>> {
    let len = r.u64()?;
    let len = r.check_len(len, 1)?;
    // Pre-allocation bounded by the frame's actual bytes (see the generic
    // `Vec` decode in `pd_common::wire`): corrupt lengths must not reserve.
    let mut out = Vec::with_capacity(len.min(r.remaining() / std::mem::size_of::<Expr>()));
    for _ in 0..len {
        out.push(decode_expr(r, depth)?);
    }
    Ok(out)
}

const RESTR_TRUE: u8 = 0;
const RESTR_AND: u8 = 1;
const RESTR_OR: u8 = 2;
const RESTR_IN: u8 = 3;
const RESTR_RANGE: u8 = 4;
const RESTR_OPAQUE: u8 = 5;

impl Encode for Restriction {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Restriction::True => out.push(RESTR_TRUE),
            Restriction::And(children) => {
                out.push(RESTR_AND);
                children.encode(out);
            }
            Restriction::Or(children) => {
                out.push(RESTR_OR);
                children.encode(out);
            }
            Restriction::In { field, values, negated } => {
                out.push(RESTR_IN);
                field.encode(out);
                values.encode(out);
                negated.encode(out);
            }
            Restriction::Range { field, min, max } => {
                out.push(RESTR_RANGE);
                field.encode(out);
                min.encode(out);
                max.encode(out);
            }
            Restriction::Opaque => out.push(RESTR_OPAQUE),
        }
    }
}

impl Decode for Restriction {
    fn decode(r: &mut Reader<'_>) -> Result<Restriction> {
        decode_restriction(r, 0)
    }
}

fn decode_restriction(r: &mut Reader<'_>, depth: usize) -> Result<Restriction> {
    depth_guard(depth)?;
    Ok(match r.u8()? {
        RESTR_TRUE => Restriction::True,
        RESTR_AND => Restriction::And(decode_restriction_vec(r, depth + 1)?),
        RESTR_OR => Restriction::Or(decode_restriction_vec(r, depth + 1)?),
        RESTR_IN => {
            let field = decode_expr(r, depth + 1)?;
            let values = Vec::<Value>::decode(r)?;
            let negated = bool::decode(r)?;
            Restriction::In { field, values, negated }
        }
        RESTR_RANGE => {
            let field = decode_expr(r, depth + 1)?;
            let min = Option::<(Value, bool)>::decode(r)?;
            let max = Option::<(Value, bool)>::decode(r)?;
            Restriction::Range { field, min, max }
        }
        RESTR_OPAQUE => Restriction::Opaque,
        other => return Err(Error::Data(format!("wire: invalid restriction tag {other}"))),
    })
}

fn decode_restriction_vec(r: &mut Reader<'_>, depth: usize) -> Result<Vec<Restriction>> {
    let len = r.u64()?;
    let len = r.check_len(len, 1)?;
    let mut out = Vec::with_capacity(len.min(r.remaining() / std::mem::size_of::<Restriction>()));
    for _ in 0..len {
        out.push(decode_restriction(r, depth)?);
    }
    Ok(out)
}

// --- analyzed queries -------------------------------------------------------
//
// The §4 tree ships the *analyzed* query — keys, aggregates, restriction,
// output mapping — instead of SQL text: workers execute it directly (no
// re-parse on every hop) and merge servers read the restriction to prune
// subtrees whose shards cannot match.

impl Encode for AggFunc {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Min => 2,
            AggFunc::Max => 3,
            AggFunc::Avg => 4,
        });
    }
}

impl Decode for AggFunc {
    fn decode(r: &mut Reader<'_>) -> Result<AggFunc> {
        Ok(match r.u8()? {
            0 => AggFunc::Count,
            1 => AggFunc::Sum,
            2 => AggFunc::Min,
            3 => AggFunc::Max,
            4 => AggFunc::Avg,
            other => return Err(Error::Data(format!("wire: invalid agg-func tag {other}"))),
        })
    }
}

impl Encode for AggExpr {
    fn encode(&self, out: &mut Vec<u8>) {
        self.func.encode(out);
        self.arg.encode(out);
        self.distinct.encode(out);
    }
}

impl Decode for AggExpr {
    fn decode(r: &mut Reader<'_>) -> Result<AggExpr> {
        Ok(AggExpr {
            func: AggFunc::decode(r)?,
            arg: Option::<Expr>::decode(r)?,
            distinct: bool::decode(r)?,
        })
    }
}

impl Encode for OutputCol {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OutputCol::Key(i) => {
                out.push(0);
                i.encode(out);
            }
            OutputCol::Agg(i) => {
                out.push(1);
                i.encode(out);
            }
        }
    }
}

impl Decode for OutputCol {
    fn decode(r: &mut Reader<'_>) -> Result<OutputCol> {
        Ok(match r.u8()? {
            0 => OutputCol::Key(usize::decode(r)?),
            1 => OutputCol::Agg(usize::decode(r)?),
            other => return Err(Error::Data(format!("wire: invalid output-col tag {other}"))),
        })
    }
}

impl Encode for AnalyzedQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.table.encode(out);
        self.keys.encode(out);
        self.aggs.encode(out);
        self.output.encode(out);
        self.filter.encode(out);
        self.restriction.encode(out);
        self.having.encode(out);
        self.order_by.encode(out);
        self.limit.encode(out);
    }
}

impl Decode for AnalyzedQuery {
    fn decode(r: &mut Reader<'_>) -> Result<AnalyzedQuery> {
        Ok(AnalyzedQuery {
            table: Option::<String>::decode(r)?,
            keys: Vec::<Expr>::decode(r)?,
            aggs: Vec::<AggExpr>::decode(r)?,
            output: Vec::<(String, OutputCol)>::decode(r)?,
            filter: Option::<Expr>::decode(r)?,
            restriction: Restriction::decode(r)?,
            having: Option::<Expr>::decode(r)?,
            order_by: Vec::<(usize, bool)>::decode(r)?,
            limit: Option::<usize>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::wire::{from_bytes, to_bytes};

    fn sample_expr() -> Expr {
        Expr::Binary {
            op: BinaryOp::And,
            lhs: Box::new(Expr::InList {
                expr: Box::new(Expr::column("country")),
                list: vec![Expr::literal("DE"), Expr::literal("US")],
                negated: true,
            }),
            rhs: Box::new(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(Expr::binary(
                    BinaryOp::Gt,
                    Expr::call("date", vec![Expr::column("timestamp")]),
                    Expr::literal(17i64),
                )),
            }),
        }
    }

    #[test]
    fn exprs_round_trip() {
        let expr = sample_expr();
        let back: Expr = from_bytes(&to_bytes(&expr)).unwrap();
        assert_eq!(back, expr);
        assert_eq!(back.canonical(), expr.canonical());
    }

    #[test]
    fn restrictions_round_trip() {
        let restriction = Restriction::And(vec![
            Restriction::In {
                field: Expr::column("country"),
                values: vec![Value::from("DE")],
                negated: false,
            },
            Restriction::Or(vec![
                Restriction::Range {
                    field: Expr::column("latency"),
                    min: Some((Value::Float(10.0), true)),
                    max: None,
                },
                Restriction::Opaque,
            ]),
            Restriction::True,
        ]);
        let back: Restriction = from_bytes(&to_bytes(&restriction)).unwrap();
        assert_eq!(back, restriction);
    }

    #[test]
    fn normalized_where_clauses_round_trip() {
        for sql in [
            "SELECT k, COUNT(*) c FROM t WHERE k IN ('a','b') AND n > 3 GROUP BY k",
            "SELECT k, COUNT(*) c FROM t WHERE NOT (k = 'x' OR n != 0) GROUP BY k",
        ] {
            let parsed = crate::parse_query(sql).unwrap();
            let analyzed = crate::analyze(&parsed).unwrap();
            let back: Restriction = from_bytes(&to_bytes(&analyzed.restriction)).unwrap();
            assert_eq!(back, analyzed.restriction, "{sql}");
        }
    }

    #[test]
    fn deep_nesting_bombs_are_rejected_not_overflowed() {
        // MAX_DEPTH+64 nested `NOT`s: two bytes per level, a few hundred
        // bytes total — decoding must fail gracefully, not blow the stack.
        let mut bytes = Vec::new();
        for _ in 0..(MAX_DEPTH + 64) {
            bytes.push(super::EXPR_UNARY);
            bytes.push(0); // UnaryOp::Not
        }
        bytes.push(super::EXPR_COLUMN);
        to_bytes(&String::from("c")).iter().for_each(|b| bytes.push(*b));
        let err = from_bytes::<Expr>(&bytes).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn truncations_error_cleanly() {
        let bytes = to_bytes(&sample_expr());
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Expr>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn analyzed_queries_round_trip() {
        for sql in [
            "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data \
             GROUP BY date ORDER BY date ASC LIMIT 10",
            "SELECT k, AVG(x) a, MIN(n) mn FROM t WHERE k IN ('a','b') AND n > 3 \
             GROUP BY k HAVING a > 1.5 ORDER BY a DESC",
            "SELECT COUNT(*) FROM t WHERE NOT (k = 'x' OR n != 0)",
        ] {
            let analyzed = crate::analyze(&crate::parse_query(sql).unwrap()).unwrap();
            let back: AnalyzedQuery = from_bytes(&to_bytes(&analyzed)).unwrap();
            assert_eq!(back, analyzed, "{sql}");
        }
    }

    #[test]
    fn analyzed_query_truncations_error_cleanly() {
        let analyzed = crate::analyze(
            &crate::parse_query("SELECT k, COUNT(*) c FROM t WHERE k = 'a' GROUP BY k").unwrap(),
        )
        .unwrap();
        let bytes = to_bytes(&analyzed);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<AnalyzedQuery>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
