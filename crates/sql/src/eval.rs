//! Scalar expression evaluation.
//!
//! Used in three places: materializing virtual fields at import time (§5),
//! row-level filtering of `WHERE` clauses that survive chunk skipping
//! (§2.4), and the row-wise baseline backends that the paper's Table 1
//! compares against.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use pd_common::{Error, Result, Value};

/// Resolves column references while evaluating an expression.
pub trait RowContext {
    /// The value of column `name` in the current row.
    fn column(&self, name: &str) -> Result<Value>;
}

/// A context over `(name, value)` slices — convenient for tests and small
/// result rows.
impl RowContext for [(&str, Value)] {
    fn column(&self, name: &str) -> Result<Value> {
        self.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| Error::Schema(format!("unknown column `{name}`")))
    }
}

/// SQL truthiness: numeric non-zero. Strings and nulls are not valid
/// predicates.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(x) => *x != 0,
        Value::Float(x) => *x != 0.0,
        _ => false,
    }
}

fn bool_value(b: bool) -> Value {
    Value::Int(b as i64)
}

/// Evaluate `expr` against a row.
pub fn eval_expr<C: RowContext + ?Sized>(expr: &Expr, row: &C) -> Result<Value> {
    match expr {
        Expr::Column(name) => row.column(name),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Call { name, args } => {
            let values: Vec<Value> =
                args.iter().map(|a| eval_expr(a, row)).collect::<Result<_>>()?;
            eval_function(name, &values)
        }
        Expr::Unary { op: UnaryOp::Not, expr } => Ok(bool_value(!truthy(&eval_expr(expr, row)?))),
        Expr::Unary { op: UnaryOp::Neg, expr } => match eval_expr(expr, row)? {
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::Float(v) => Ok(Value::Float(-v)),
            other => Err(Error::Type(format!("cannot negate {other}"))),
        },
        Expr::Binary { op, lhs, rhs } => {
            // Short-circuit the logical operators.
            match op {
                BinaryOp::And => {
                    if !truthy(&eval_expr(lhs, row)?) {
                        return Ok(bool_value(false));
                    }
                    return Ok(bool_value(truthy(&eval_expr(rhs, row)?)));
                }
                BinaryOp::Or => {
                    if truthy(&eval_expr(lhs, row)?) {
                        return Ok(bool_value(true));
                    }
                    return Ok(bool_value(truthy(&eval_expr(rhs, row)?)));
                }
                _ => {}
            }
            let a = eval_expr(lhs, row)?;
            let b = eval_expr(rhs, row)?;
            eval_binary(*op, &a, &b)
        }
        Expr::InList { expr, list, negated } => {
            let v = eval_expr(expr, row)?;
            let mut found = false;
            for item in list {
                if values_equal(&v, &eval_expr(item, row)?) {
                    found = true;
                    break;
                }
            }
            Ok(bool_value(found != *negated))
        }
    }
}

/// SQL equality: numerically across Int/Float, exact otherwise.
pub fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

/// SQL ordering: numerically across Int/Float, the total [`Value`] order
/// otherwise. Public because shard-metadata pruning must reason with
/// *exactly* the comparator the row filter applies — any divergence would
/// let a pre-skip drop rows the filter would have kept.
pub fn values_compare(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) => (*x as f64).total_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.total_cmp(&(*y as f64)),
        _ => a.cmp(b),
    }
}

fn eval_binary(op: BinaryOp, a: &Value, b: &Value) -> Result<Value> {
    use std::cmp::Ordering::*;
    Ok(match op {
        BinaryOp::Eq => bool_value(values_equal(a, b)),
        BinaryOp::Ne => bool_value(!values_equal(a, b)),
        BinaryOp::Lt => bool_value(values_compare(a, b) == Less),
        BinaryOp::Le => bool_value(values_compare(a, b) != Greater),
        BinaryOp::Gt => bool_value(values_compare(a, b) == Greater),
        BinaryOp::Ge => bool_value(values_compare(a, b) != Less),
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => match (a, b) {
            (Value::Int(x), Value::Int(y)) => Value::Int(match op {
                BinaryOp::Add => x.wrapping_add(*y),
                BinaryOp::Sub => x.wrapping_sub(*y),
                _ => x.wrapping_mul(*y),
            }),
            _ => {
                let (x, y) = numeric_pair(a, b, op)?;
                Value::Float(match op {
                    BinaryOp::Add => x + y,
                    BinaryOp::Sub => x - y,
                    _ => x * y,
                })
            }
        },
        // Division always yields a float (7/2 = 3.5, as the UI expects for
        // computed measures like AVG built from SUM/SUM).
        BinaryOp::Div => {
            let (x, y) = numeric_pair(a, b, op)?;
            Value::Float(x / y)
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled by eval_expr"),
    })
}

fn numeric_pair(a: &Value, b: &Value, op: BinaryOp) -> Result<(f64, f64)> {
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(Error::Type(format!("cannot apply `{}` to {a} and {b}", op.symbol()))),
    }
}

/// Scalar function dispatch.
fn eval_function(name: &str, args: &[Value]) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::Type(format!("{name}() takes {n} argument(s), got {}", args.len())))
        }
    };
    match name {
        "date" => {
            arity(1)?;
            let ts = int_arg(name, &args[0])?;
            let (y, m, d) = civil_from_days(ts.div_euclid(86_400));
            Ok(Value::Str(format!("{y:04}-{m:02}-{d:02}")))
        }
        "hour" => {
            arity(1)?;
            let ts = int_arg(name, &args[0])?;
            Ok(Value::Int(ts.rem_euclid(86_400) / 3_600))
        }
        "year" => {
            arity(1)?;
            let ts = int_arg(name, &args[0])?;
            Ok(Value::Int(civil_from_days(ts.div_euclid(86_400)).0))
        }
        "month" => {
            arity(1)?;
            let ts = int_arg(name, &args[0])?;
            Ok(Value::Int(i64::from(civil_from_days(ts.div_euclid(86_400)).1)))
        }
        "day" => {
            arity(1)?;
            let ts = int_arg(name, &args[0])?;
            Ok(Value::Int(i64::from(civil_from_days(ts.div_euclid(86_400)).2)))
        }
        "lower" => {
            arity(1)?;
            Ok(Value::Str(str_arg(name, &args[0])?.to_lowercase()))
        }
        "upper" => {
            arity(1)?;
            Ok(Value::Str(str_arg(name, &args[0])?.to_uppercase()))
        }
        "length" => {
            arity(1)?;
            Ok(Value::Int(str_arg(name, &args[0])?.chars().count() as i64))
        }
        "contains" => {
            arity(2)?;
            let hay = str_arg(name, &args[0])?;
            let needle = str_arg(name, &args[1])?;
            Ok(bool_value(hay.contains(needle)))
        }
        "if" => {
            arity(3)?;
            Ok(if truthy(&args[0]) { args[1].clone() } else { args[2].clone() })
        }
        "log2_bucket" => {
            // Bucket a non-negative number by ⌊log2⌋ — the x-axis of the
            // paper's Figure 5.
            arity(1)?;
            let v = args[0]
                .as_float()
                .ok_or_else(|| Error::Type("log2_bucket() needs a number".into()))?;
            Ok(Value::Int(if v < 1.0 { 0 } else { v.log2().floor() as i64 }))
        }
        other => Err(Error::Unsupported(format!("function `{other}`"))),
    }
}

fn int_arg(name: &str, v: &Value) -> Result<i64> {
    match v {
        Value::Int(x) => Ok(*x),
        Value::Float(x) => Ok(*x as i64),
        other => Err(Error::Type(format!("{name}() needs a numeric argument, got {other}"))),
    }
}

fn str_arg<'a>(name: &str, v: &'a Value) -> Result<&'a str> {
    v.as_str().ok_or_else(|| Error::Type(format!("{name}() needs a string argument, got {v}")))
}

/// Days-since-epoch → (year, month, day) in the proleptic Gregorian
/// calendar (Howard Hinnant's `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn eval_where(sql: &str, row: &[(&str, Value)]) -> Value {
        let q = parse_query(&format!("SELECT a FROM t WHERE {sql}")).unwrap();
        eval_expr(&q.where_clause.unwrap(), row).unwrap()
    }

    #[test]
    fn date_function_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        // 2012-02-29 (the leap day the paper's §5 example uses) is day 15399.
        assert_eq!(civil_from_days(15_399), (2012, 2, 29));
        let v = eval_function("date", &[Value::Int(15_399 * 86_400 + 12 * 3600)]).unwrap();
        assert_eq!(v, Value::from("2012-02-29"));
        // End of 2011 — the paper's production measurement window.
        let v = eval_function("date", &[Value::Int(1_325_375_999)]).unwrap();
        assert_eq!(v, Value::from("2011-12-31"));
    }

    #[test]
    fn date_handles_negative_timestamps() {
        let v = eval_function("date", &[Value::Int(-1)]).unwrap();
        assert_eq!(v, Value::from("1969-12-31"));
    }

    #[test]
    fn arithmetic_and_comparisons() {
        let row: &[(&str, Value)] = &[("x", Value::Int(7)), ("y", Value::Float(2.0))];
        assert_eq!(eval_where("x + 1 = 8", row), Value::Int(1));
        assert_eq!(eval_where("x / 2 = 3.5", row), Value::Int(1));
        assert_eq!(eval_where("x * y = 14.0", row), Value::Int(1));
        assert_eq!(eval_where("x < y", row), Value::Int(0));
        assert_eq!(eval_where("x >= 7", row), Value::Int(1));
    }

    #[test]
    fn logic_short_circuits() {
        // `boom` is an unknown column; AND must not evaluate it.
        let row: &[(&str, Value)] = &[("x", Value::Int(0))];
        assert_eq!(eval_where("x = 1 AND boom = 2", row), Value::Int(0));
        let row: &[(&str, Value)] = &[("x", Value::Int(1))];
        assert_eq!(eval_where("x = 1 OR boom = 2", row), Value::Int(1));
    }

    #[test]
    fn in_and_not_in() {
        let row: &[(&str, Value)] = &[("country", Value::from("DE"))];
        assert_eq!(eval_where("country IN ('DE', 'FR')", row), Value::Int(1));
        assert_eq!(eval_where("country NOT IN ('DE', 'FR')", row), Value::Int(0));
        assert_eq!(eval_where("country IN ('US')", row), Value::Int(0));
        assert_eq!(eval_where("NOT country IN ('US')", row), Value::Int(1));
    }

    #[test]
    fn cross_type_equality() {
        assert!(values_equal(&Value::Int(4), &Value::Float(4.0)));
        assert!(!values_equal(&Value::Int(4), &Value::Float(4.5)));
        assert!(!values_equal(&Value::from("4"), &Value::Int(4)));
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval_function("lower", &[Value::from("AuTo")]).unwrap(), Value::from("auto"));
        assert_eq!(eval_function("upper", &[Value::from("cat")]).unwrap(), Value::from("CAT"));
        assert_eq!(eval_function("length", &[Value::from("kostüme")]).unwrap(), Value::Int(7));
        assert_eq!(
            eval_function("contains", &[Value::from("blue cat toy"), Value::from("cat")]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn if_and_log2_bucket() {
        assert_eq!(
            eval_function("if", &[Value::Int(1), Value::from("y"), Value::from("n")]).unwrap(),
            Value::from("y")
        );
        assert_eq!(eval_function("log2_bucket", &[Value::Float(0.5)]).unwrap(), Value::Int(0));
        assert_eq!(eval_function("log2_bucket", &[Value::Int(1)]).unwrap(), Value::Int(0));
        assert_eq!(eval_function("log2_bucket", &[Value::Int(1024)]).unwrap(), Value::Int(10));
        assert_eq!(eval_function("log2_bucket", &[Value::Int(1500)]).unwrap(), Value::Int(10));
    }

    #[test]
    fn errors_are_typed() {
        assert!(matches!(eval_function("date", &[Value::from("x")]), Err(Error::Type(_))));
        assert!(matches!(eval_function("nope", &[]), Err(Error::Unsupported(_))));
        assert!(matches!(eval_function("date", &[]), Err(Error::Type(_))));
        let row: &[(&str, Value)] = &[];
        let q = parse_query("SELECT a FROM t WHERE missing = 1").unwrap();
        assert!(eval_expr(&q.where_clause.unwrap(), row).is_err());
    }

    #[test]
    fn hour_year_month_day() {
        let ts = Value::Int(15_399 * 86_400 + 13 * 3600 + 59);
        assert_eq!(eval_function("hour", std::slice::from_ref(&ts)).unwrap(), Value::Int(13));
        assert_eq!(eval_function("year", std::slice::from_ref(&ts)).unwrap(), Value::Int(2012));
        assert_eq!(eval_function("month", std::slice::from_ref(&ts)).unwrap(), Value::Int(2));
        assert_eq!(eval_function("day", &[ts]).unwrap(), Value::Int(29));
    }
}
