//! Tokenizer for the SQL subset.

use pd_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser).
    Ident(String),
    /// String literal: `'...'` or `"..."` with backslash escapes.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
}

impl Token {
    /// Does this token equal keyword `kw` (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `input`; returns the token list (without EOF marker).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                // `--` starts a comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            b'/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            b';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                i += 1;
                // tolerate `==`
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(Error::Parse(format!("unexpected `!` at byte {i}")));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = c;
                let mut out = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(Error::Parse("unterminated string literal".into())),
                        Some(&b) if b == quote => {
                            i += 1;
                            break;
                        }
                        Some(&b'\\') => {
                            // The escaped character may be multi-byte;
                            // consume a full UTF-8 scalar.
                            let ch = input[i + 1..]
                                .chars()
                                .next()
                                .ok_or_else(|| Error::Parse("dangling escape".into()))?;
                            out.push(match ch {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            });
                            i += 1 + ch.len_utf8();
                        }
                        Some(_) => {
                            // Consume a full UTF-8 scalar.
                            let rest = &input[i..];
                            let ch = rest.chars().next().expect("non-empty");
                            out.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token::Str(out));
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !saw_dot && !saw_exp => {
                            saw_dot = true;
                            i += 1;
                        }
                        b'e' | b'E' if !saw_exp && i > start => {
                            saw_exp = true;
                            i += 1;
                            if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                if text == "." {
                    return Err(Error::Parse("lone `.` is not a number".into()));
                }
                if saw_dot || saw_exp {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad float literal `{text}`")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad integer literal `{text}`")))?;
                    tokens.push(Token::Int(v));
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i], b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'.')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character `{}` at byte {i}",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_paper_query() {
        let toks = tokenize(
            r#"SELECT search_string, COUNT(*) as c FROM data
               WHERE search_string IN ("la redoute", "voyages sncf")
               GROUP BY search_string ORDER BY c DESC LIMIT 10;"#,
        )
        .unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Str("la redoute".into())));
        assert!(toks.contains(&Token::Int(10)));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(tokenize("4.25").unwrap(), vec![Token::Float(4.25)]);
        assert_eq!(tokenize("1e3").unwrap(), vec![Token::Float(1000.0)]);
        assert_eq!(tokenize("2.5E-2").unwrap(), vec![Token::Float(0.025)]);
    }

    #[test]
    fn operators_and_comparisons() {
        let toks = tokenize("a <= b >= c != d <> e = f < g > h").unwrap();
        let ops: Vec<&Token> = toks.iter().filter(|t| !matches!(t, Token::Ident(_))).collect();
        assert_eq!(
            ops,
            vec![
                &Token::Le,
                &Token::Ge,
                &Token::Ne,
                &Token::Ne,
                &Token::Eq,
                &Token::Lt,
                &Token::Gt
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_quotes() {
        assert_eq!(tokenize(r#"'it\'s'"#).unwrap(), vec![Token::Str("it's".into())]);
        assert_eq!(tokenize(r#""tab\there""#).unwrap(), vec![Token::Str("tab\there".into())]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT -- top ten\n c").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn dotted_identifiers_allowed() {
        // Table names in the logs look like `logs.powerdrill.queries`.
        let toks = tokenize("logs.powerdrill.queries").unwrap();
        assert_eq!(toks, vec![Token::Ident("logs.powerdrill.queries".into())]);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            tokenize("'karnevalskostüme'").unwrap(),
            vec![Token::Str("karnevalskostüme".into())]
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(tokenize("SELECT @x").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
