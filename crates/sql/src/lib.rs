//! The SQL subset PowerDrill's engine processes (§2.4, §4, §5).
//!
//! The Web UI the paper describes translates drag'n'drop interactions into
//! group-by SQL queries of a constrained shape:
//!
//! ```sql
//! SELECT search_string, COUNT(*) as c FROM data
//! WHERE search_string IN ("la redoute", "voyages sncf")
//! GROUP BY search_string ORDER BY c DESC LIMIT 10;
//! ```
//!
//! This crate provides the full front end for that subset:
//!
//! - [`lexer`] / [`parser`] — text → [`ast::Query`];
//! - [`ast`] — expressions, aggregates, queries, with canonical SQL
//!   rendering (`Display`), which doubles as the key for materialized
//!   virtual fields (§5);
//! - [`eval`] — scalar expression evaluation over row contexts, including
//!   the scalar functions (`date(...)`, etc.) the paper's Query 2 uses;
//! - [`restriction`] — normalization of `WHERE` clauses into the
//!   `AND / OR / NOT / IN / NOT IN / = / !=` fragment that drives chunk
//!   skipping (§2.4, §5 "Complex Expressions");
//! - [`analyze`](module@crate::analyze) — semantic analysis into an executable plan shape;
//! - [`rewrite`] — the §4 two-level rewrite for distributed execution;
//! - [`codec`] — wire codecs ([`pd_common::wire`]) for expressions and
//!   restrictions, with depth-bounded decoding so corrupt frames cannot
//!   crash a merge server.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod ast;
pub mod codec;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod restriction;
pub mod rewrite;

pub use analyze::{analyze, AnalyzedQuery, OutputCol};
pub use ast::{
    AggExpr, AggFunc, BinaryOp, Expr, OrderKey, Query, SelectExpr, SelectItem, TableRef, UnaryOp,
};
pub use eval::{eval_expr, truthy, values_compare, values_equal, RowContext};
pub use parser::parse_query;
pub use restriction::Restriction;
pub use rewrite::{distributed_plan, DistributedPlan, MergeOp};
