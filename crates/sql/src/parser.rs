//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT item (, item)* FROM table
//!              [WHERE expr] [GROUP BY expr (, expr)*] [HAVING expr]
//!              [ORDER BY order (, order)*] [LIMIT int] [;]
//! table     := ident | '(' query (UNION ALL query)* ')'
//! item      := (aggregate | expr) [[AS] ident]
//! aggregate := COUNT '(' '*' ')' | (COUNT|SUM|MIN|MAX|AVG) '(' [DISTINCT] expr ')'
//! order     := expr [ASC|DESC]
//! expr      := precedence-climbing over OR < AND < NOT < cmp/IN < +- < */ < unary
//! ```

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use pd_common::{Error, Result, Value};

/// Parse a single SQL statement.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.eat_if(|t| matches!(t, Token::Semicolon));
    if p.pos != p.tokens.len() {
        return Err(Error::Parse(format!("trailing tokens after query: {:?}", p.peek())));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const AGG_NAMES: [(&str, AggFunc); 5] = [
    ("count", AggFunc::Count),
    ("sum", AggFunc::Sum),
    ("min", AggFunc::Min),
    ("max", AggFunc::Max),
    ("avg", AggFunc::Avg),
];

/// Reserved words that terminate an expression / cannot be aliases.
const RESERVED: [&str; 16] = [
    "select", "from", "where", "group", "by", "having", "order", "limit", "as", "and", "or", "not",
    "in", "union", "all", "between",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| Error::Parse("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected `{}`, found {:?}", kw.to_uppercase(), self.peek())))
        }
    }

    fn eat_if(&mut self, pred: impl Fn(&Token) -> bool) -> bool {
        if self.peek().is_some_and(pred) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect(&mut self, token: Token) -> Result<()> {
        if self.eat_if(|t| *t == token) {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {token:?}, found {:?}", self.peek())))
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let mut select = vec![self.parse_select_item()?];
        while self.eat_if(|t| matches!(t, Token::Comma)) {
            select.push(self.parse_select_item()?);
        }
        self.expect_kw("from")?;
        let from = self.parse_table_ref()?;
        let where_clause = if self.eat_kw("where") { Some(self.parse_expr(0)?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.parse_expr(0)?);
            while self.eat_if(|t| matches!(t, Token::Comma)) {
                group_by.push(self.parse_expr(0)?);
            }
        }
        let having = if self.eat_kw("having") { Some(self.parse_expr(0)?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr(0)?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_if(|t| matches!(t, Token::Comma)) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(n) if *n >= 0 => Some(*n as usize),
                other => {
                    return Err(Error::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query { select, from, where_clause, group_by, having, order_by, limit })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        if self.eat_if(|t| matches!(t, Token::LParen)) {
            let mut queries = vec![self.parse_union_member()?];
            while self.eat_kw("union") {
                self.expect_kw("all")?;
                queries.push(self.parse_union_member()?);
            }
            self.expect(Token::RParen)?;
            return Ok(TableRef::UnionAll(queries));
        }
        match self.next()? {
            Token::Ident(name) if !is_reserved(name) => Ok(TableRef::Table(name.clone())),
            other => Err(Error::Parse(format!("expected table name, found {other:?}"))),
        }
    }

    /// A member of a `UNION ALL` list: either `(query)` or a bare query.
    fn parse_union_member(&mut self) -> Result<Query> {
        if self.eat_if(|t| matches!(t, Token::LParen)) {
            let q = self.parse_query()?;
            self.expect(Token::RParen)?;
            Ok(q)
        } else {
            self.parse_query()
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        let expr = if let Some(agg) = self.try_parse_aggregate()? {
            SelectExpr::Aggregate(agg)
        } else {
            SelectExpr::Scalar(self.parse_expr(0)?)
        };
        let alias = if self.eat_kw("as") {
            match self.next()? {
                Token::Ident(a) if !is_reserved(a) => Some(a.clone()),
                other => return Err(Error::Parse(format!("expected alias, found {other:?}"))),
            }
        } else if let Some(Token::Ident(a)) = self.peek() {
            // Bare alias: `COUNT(*) c`.
            if !is_reserved(a) {
                let a = a.clone();
                self.pos += 1;
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    /// If the next tokens form an aggregate call, consume and return it.
    fn try_parse_aggregate(&mut self) -> Result<Option<AggExpr>> {
        let Some(Token::Ident(name)) = self.peek() else {
            return Ok(None);
        };
        let Some((_, func)) =
            AGG_NAMES.iter().find(|(kw, _)| name.eq_ignore_ascii_case(kw)).copied()
        else {
            return Ok(None);
        };
        if self.tokens.get(self.pos + 1) != Some(&Token::LParen) {
            return Ok(None);
        }
        self.pos += 2; // name + (
        if func == AggFunc::Count && self.eat_if(|t| matches!(t, Token::Star)) {
            self.expect(Token::RParen)?;
            return Ok(Some(AggExpr::count_star()));
        }
        let distinct = self.eat_kw("distinct");
        let arg = self.parse_expr(0)?;
        self.expect(Token::RParen)?;
        if distinct && func != AggFunc::Count {
            return Err(Error::Unsupported(format!("{}(DISTINCT ...)", func.name())));
        }
        Ok(Some(AggExpr { func, arg: Some(arg), distinct }))
    }

    /// Precedence-climbing expression parser.
    fn parse_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            // `[NOT] IN (...)` and `[NOT] BETWEEN a AND b` bind like
            // comparisons.
            let saved = self.pos;
            let negated = self.eat_kw("not");
            if self.eat_kw("in") {
                if BinaryOp::Eq.precedence() < min_prec {
                    self.pos = saved;
                    return Ok(lhs);
                }
                self.expect(Token::LParen)?;
                let mut list = vec![self.parse_expr(0)?];
                while self.eat_if(|t| matches!(t, Token::Comma)) {
                    list.push(self.parse_expr(0)?);
                }
                self.expect(Token::RParen)?;
                lhs = Expr::InList { expr: Box::new(lhs), list, negated };
                continue;
            }
            if self.eat_kw("between") {
                if BinaryOp::Eq.precedence() < min_prec {
                    self.pos = saved;
                    return Ok(lhs);
                }
                // Bounds parse above AND precedence so the separating AND
                // is not swallowed.
                let low = self.parse_expr(BinaryOp::Eq.precedence())?;
                self.expect_kw("and")?;
                let high = self.parse_expr(BinaryOp::Eq.precedence())?;
                // Desugar: x BETWEEN a AND b == (x >= a AND x <= b).
                let both = Expr::binary(
                    BinaryOp::And,
                    Expr::binary(BinaryOp::Ge, lhs.clone(), low),
                    Expr::binary(BinaryOp::Le, lhs, high),
                );
                lhs = if negated {
                    Expr::Unary { op: UnaryOp::Not, expr: Box::new(both) }
                } else {
                    both
                };
                continue;
            }
            if negated {
                self.pos = saved;
                return Ok(lhs);
            }

            let Some(op) = self.peek_binary_op() else {
                return Ok(lhs);
            };
            if op.precedence() < min_prec {
                return Ok(lhs);
            }
            self.pos += 1; // consume the operator token (AND/OR are single idents too)
            let rhs = self.parse_expr(op.precedence() + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn peek_binary_op(&self) -> Option<BinaryOp> {
        match self.peek()? {
            Token::Plus => Some(BinaryOp::Add),
            Token::Minus => Some(BinaryOp::Sub),
            Token::Star => Some(BinaryOp::Mul),
            Token::Slash => Some(BinaryOp::Div),
            Token::Eq => Some(BinaryOp::Eq),
            Token::Ne => Some(BinaryOp::Ne),
            Token::Lt => Some(BinaryOp::Lt),
            Token::Le => Some(BinaryOp::Le),
            Token::Gt => Some(BinaryOp::Gt),
            Token::Ge => Some(BinaryOp::Ge),
            t if t.is_kw("and") => Some(BinaryOp::And),
            t if t.is_kw("or") => Some(BinaryOp::Or),
            _ => None,
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            // NOT binds tighter than AND but looser than comparisons.
            let inner = self.parse_expr(3)?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        if self.eat_if(|t| matches!(t, Token::Minus)) {
            let inner = self.parse_unary()?;
            // Fold negation into numeric literals.
            return Ok(match inner {
                Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                Expr::Literal(Value::Float(v)) => Expr::Literal(Value::Float(-v)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next()?.clone() {
            Token::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            Token::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::LParen => {
                let e = self.parse_expr(0)?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            // `*` in primary position: the argument of `COUNT(*)` when it
            // appears in HAVING / ORDER BY expression context.
            Token::Star => Ok(Expr::Column("*".into())),
            Token::Ident(name) => {
                if is_reserved(&name) {
                    return Err(Error::Parse(format!("unexpected keyword `{name}`")));
                }
                if self.eat_if(|t| matches!(t, Token::LParen)) {
                    let mut args = Vec::new();
                    if !self.eat_if(|t| matches!(t, Token::RParen)) {
                        args.push(self.parse_expr(0)?);
                        while self.eat_if(|t| matches!(t, Token::Comma)) {
                            args.push(self.parse_expr(0)?);
                        }
                        self.expect(Token::RParen)?;
                    }
                    return Ok(Expr::Call { name: name.to_lowercase(), args });
                }
                Ok(Expr::Column(name))
            }
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_section24_query() {
        let q = parse_query(
            r#"SELECT search_string, COUNT(*) as c FROM data
               WHERE search_string IN ("la redoute", "voyages sncf")
               GROUP BY search_string ORDER BY c DESC LIMIT 10;"#,
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[1].alias.as_deref(), Some("c"));
        assert!(matches!(q.from, TableRef::Table(ref t) if t == "data"));
        assert!(matches!(q.where_clause, Some(Expr::InList { .. })));
        assert_eq!(q.group_by, vec![Expr::column("search_string")]);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_paper_experiment_queries() {
        // Query 1
        let q1 = parse_query(
            "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q1.group_by.len(), 1);
        // Query 2
        let q2 = parse_query(
            "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data
             GROUP BY date ORDER BY date ASC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q2.select.len(), 3);
        assert!(matches!(
            q2.select[0].expr,
            SelectExpr::Scalar(Expr::Call { ref name, .. }) if name == "date"
        ));
        assert!(!q2.order_by[0].desc);
        // Query 3
        let q3 = parse_query(
            "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q3.limit, Some(10));
    }

    #[test]
    fn parses_section4_distributed_rewrite_shape() {
        let q = parse_query(
            "SELECT a, SUM(x) FROM
               (SELECT a, SUM(x) as x FROM S1 GROUP BY a)
               UNION ALL
               (SELECT a, SUM(x) as x FROM S2 GROUP BY a)
             GROUP BY a;",
        );
        // The paper writes `FROM (q1) UNION ALL (q2)`; we accept it with the
        // outer parens around the whole union too.
        let q = match q {
            Ok(q) => q,
            Err(_) => parse_query(
                "SELECT a, SUM(x) FROM
                   ((SELECT a, SUM(x) as x FROM S1 GROUP BY a)
                    UNION ALL
                    (SELECT a, SUM(x) as x FROM S2 GROUP BY a))
                 GROUP BY a;",
            )
            .unwrap(),
        };
        match &q.from {
            TableRef::UnionAll(members) => assert_eq!(members.len(), 2),
            other => panic!("expected UNION ALL, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let q = parse_query("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // OR(a=1, AND(b=2, c=3))
        match q.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("bad tree: {other:?}"),
        }
        let q = parse_query("SELECT a FROM t WHERE a + b * c = 7").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::Eq, lhs, .. } => match *lhs {
                Expr::Binary { op: BinaryOp::Add, rhs, .. } => {
                    assert!(matches!(*rhs, Expr::Binary { op: BinaryOp::Mul, .. }));
                }
                other => panic!("bad arithmetic tree: {other:?}"),
            },
            other => panic!("bad tree: {other:?}"),
        }
    }

    #[test]
    fn not_in_and_not() {
        let q = parse_query("SELECT a FROM t WHERE country NOT IN ('US', 'DE')").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::InList { negated: true, .. }));
        let q = parse_query("SELECT a FROM t WHERE NOT country = 'US'").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::Unary { op: UnaryOp::Not, .. }));
        let q = parse_query("SELECT a FROM t WHERE NOT a = 1 AND b = 2").unwrap();
        // NOT binds to the comparison, not the conjunction.
        assert!(matches!(q.where_clause.unwrap(), Expr::Binary { op: BinaryOp::And, .. }));
    }

    #[test]
    fn between_desugars_to_range_conjunction() {
        let q = parse_query("SELECT a FROM t WHERE x BETWEEN 3 AND 7").unwrap();
        assert_eq!(q.where_clause.unwrap().to_string(), "((x >= 3) AND (x <= 7))");
        let q = parse_query("SELECT a FROM t WHERE x NOT BETWEEN 3 AND 7").unwrap();
        assert_eq!(q.where_clause.unwrap().to_string(), "(NOT (((x >= 3) AND (x <= 7))))");
        // BETWEEN binds tighter than a following AND.
        let q = parse_query("SELECT a FROM t WHERE x BETWEEN 3 AND 7 AND y = 1").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::And, rhs, .. } => {
                assert_eq!(rhs.to_string(), "(y = 1)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_distinct() {
        let q =
            parse_query("SELECT country, COUNT(DISTINCT table_name) FROM data GROUP BY country")
                .unwrap();
        match &q.select[1].expr {
            SelectExpr::Aggregate(a) => {
                assert_eq!(a.func, AggFunc::Count);
                assert!(a.distinct);
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
        assert!(parse_query("SELECT SUM(DISTINCT x) FROM t").is_err());
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse_query("SELECT a FROM t WHERE x = -5").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { rhs, .. } => assert_eq!(*rhs, Expr::Literal(Value::Int(-5))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_aliases() {
        let q = parse_query("SELECT COUNT(*) c FROM t").unwrap();
        assert_eq!(q.select[0].alias.as_deref(), Some("c"));
    }

    #[test]
    fn round_trips_through_display() {
        let sql = r#"SELECT country, COUNT(*) AS c FROM data WHERE search_string IN ("cat", "dog") AND (latency > 100) GROUP BY country ORDER BY c DESC LIMIT 10"#;
        let q = parse_query(sql).unwrap();
        let rendered = q.to_string();
        let q2 = parse_query(&rendered).unwrap();
        assert_eq!(q, q2, "display text must re-parse to the same AST");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("").is_err());
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT a FROM").is_err());
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
        assert!(parse_query("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_query("SELECT a FROM t GROUP a").is_err());
        assert!(parse_query("SELECT a FROM t extra garbage ,").is_err());
        assert!(parse_query("SELECT a FROM select").is_err());
    }

    #[test]
    fn function_calls_lowercase_names() {
        let q = parse_query("SELECT DATE(timestamp) FROM t GROUP BY DATE(timestamp)").unwrap();
        match &q.select[0].expr {
            SelectExpr::Scalar(Expr::Call { name, .. }) => assert_eq!(name, "date"),
            other => panic!("{other:?}"),
        }
    }
}
