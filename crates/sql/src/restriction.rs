//! Normalization of `WHERE` clauses into the skipping fragment.
//!
//! §2.4: *"the system provides special support of the following operators:
//! AND, OR, NOT, IN, NOT IN, =, !="* — and §5 "Complex Expressions":
//! *"User-given expressions are split apart by these special operators as
//! far as possible"*, the remaining pieces being fields or materialized
//! building-block expressions.
//!
//! [`Restriction::from_expr`] performs exactly that split. `NOT` is pushed
//! down with De Morgan's laws; `=` / `!=` become one-element `IN` /
//! `NOT IN`. As an extension beyond the paper's operator list, order
//! comparisons (`<`, `<=`, `>`, `>=`) against literals become
//! [`Restriction::Range`] nodes: sorted dictionaries make a value range an
//! id range, so chunk min/max ids can skip — subsuming the min/max "small
//! materialized aggregates" technique the paper discusses in §2.1.
//! Everything else (arithmetic predicates, `contains(...)` calls) becomes
//! [`Restriction::Opaque`] — still evaluated row by row, but useless for
//! chunk skipping.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use pd_common::Value;

/// A `WHERE` clause normalized for chunk-level reasoning.
#[derive(Debug, Clone, PartialEq)]
pub enum Restriction {
    /// No restriction — every chunk fully active.
    True,
    /// Conjunction.
    And(Vec<Restriction>),
    /// Disjunction.
    Or(Vec<Restriction>),
    /// `field [NOT] IN (values)`; `field` may be any materialized
    /// expression (§5), identified by its canonical text.
    In { field: Expr, values: Vec<Value>, negated: bool },
    /// `min <= field <= max` with `(value, inclusive)` bounds (either side
    /// optional). An extension: not part of the paper's special-operator
    /// list, but expressible on the same data structures.
    Range { field: Expr, min: Option<(Value, bool)>, max: Option<(Value, bool)> },
    /// A predicate the chunk dictionaries cannot reason about. The chunk
    /// must be scanned (rows are still filtered individually).
    Opaque,
}

impl Restriction {
    /// Normalize a `WHERE` expression.
    pub fn from_expr(expr: &Expr) -> Restriction {
        build(expr, false)
    }

    /// All distinct field expressions used in `IN` restrictions — the
    /// columns whose chunk dictionaries the skipping pass will consult.
    pub fn skip_fields(&self) -> Vec<&Expr> {
        let mut out: Vec<&Expr> = Vec::new();
        self.collect_fields(&mut out);
        out
    }

    fn collect_fields<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Restriction::And(children) | Restriction::Or(children) => {
                for c in children {
                    c.collect_fields(out);
                }
            }
            Restriction::In { field, .. } | Restriction::Range { field, .. } => {
                if !out.contains(&field) {
                    out.push(field);
                }
            }
            Restriction::True | Restriction::Opaque => {}
        }
    }

    /// Can the skipping machinery gain anything from this restriction?
    pub fn is_discriminative(&self) -> bool {
        match self {
            Restriction::In { .. } | Restriction::Range { .. } => true,
            Restriction::And(c) => c.iter().any(Restriction::is_discriminative),
            // An OR helps only if *every* branch is discriminative (one
            // opaque branch forces a scan of everything).
            Restriction::Or(c) => !c.is_empty() && c.iter().all(Restriction::is_discriminative),
            Restriction::True | Restriction::Opaque => false,
        }
    }
}

/// Recursive normalization carrying a negation flag (De Morgan push-down).
fn build(expr: &Expr, negate: bool) -> Restriction {
    match expr {
        Expr::Unary { op: UnaryOp::Not, expr } => build(expr, !negate),
        Expr::Binary { op: BinaryOp::And, lhs, rhs } => {
            let (l, r) = (build(lhs, negate), build(rhs, negate));
            if negate {
                or2(l, r)
            } else {
                and2(l, r)
            }
        }
        Expr::Binary { op: BinaryOp::Or, lhs, rhs } => {
            let (l, r) = (build(lhs, negate), build(rhs, negate));
            if negate {
                and2(l, r)
            } else {
                or2(l, r)
            }
        }
        Expr::Binary { op: BinaryOp::Eq, lhs, rhs } => eq_restriction(lhs, rhs, negate),
        Expr::Binary { op: BinaryOp::Ne, lhs, rhs } => eq_restriction(lhs, rhs, !negate),
        Expr::Binary {
            op: op @ (BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge),
            lhs,
            rhs,
        } => range_restriction(*op, lhs, rhs, negate),
        Expr::InList { expr, list, negated } => {
            let mut values = Vec::with_capacity(list.len());
            for item in list {
                match item {
                    Expr::Literal(v) => values.push(v.clone()),
                    _ => return Restriction::Opaque,
                }
            }
            if matches!(**expr, Expr::Literal(_)) {
                return Restriction::Opaque;
            }
            Restriction::In { field: (**expr).clone(), values, negated: *negated != negate }
        }
        _ => Restriction::Opaque,
    }
}

/// `lhs = rhs` (or `!=` when `negated`): one side must be a literal, the
/// other becomes the field expression.
fn eq_restriction(lhs: &Expr, rhs: &Expr, negated: bool) -> Restriction {
    let (field, value) = match (lhs, rhs) {
        (Expr::Literal(v), f) if !matches!(f, Expr::Literal(_)) => (f, v),
        (f, Expr::Literal(v)) if !matches!(f, Expr::Literal(_)) => (f, v),
        _ => return Restriction::Opaque,
    };
    Restriction::In { field: field.clone(), values: vec![value.clone()], negated }
}

/// `lhs op rhs` with one literal side becomes a one-sided range. Negation
/// flips the comparison (`NOT (x < v)` is `x >= v`).
fn range_restriction(op: BinaryOp, lhs: &Expr, rhs: &Expr, negate: bool) -> Restriction {
    // Normalize to `field op literal`.
    let (field, value, op) = match (lhs, rhs) {
        (f, Expr::Literal(v)) if !matches!(f, Expr::Literal(_)) => (f, v, op),
        (Expr::Literal(v), f) if !matches!(f, Expr::Literal(_)) => {
            // `lit < field` is `field > lit`, etc.
            let flipped = match op {
                BinaryOp::Lt => BinaryOp::Gt,
                BinaryOp::Le => BinaryOp::Ge,
                BinaryOp::Gt => BinaryOp::Lt,
                BinaryOp::Ge => BinaryOp::Le,
                other => other,
            };
            (f, v, flipped)
        }
        _ => return Restriction::Opaque,
    };
    let op = if negate {
        match op {
            BinaryOp::Lt => BinaryOp::Ge,
            BinaryOp::Le => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::Le,
            BinaryOp::Ge => BinaryOp::Lt,
            other => other,
        }
    } else {
        op
    };
    let (min, max) = match op {
        BinaryOp::Lt => (None, Some((value.clone(), false))),
        BinaryOp::Le => (None, Some((value.clone(), true))),
        BinaryOp::Gt => (Some((value.clone(), false)), None),
        BinaryOp::Ge => (Some((value.clone(), true)), None),
        _ => return Restriction::Opaque,
    };
    Restriction::Range { field: field.clone(), min, max }
}

fn and2(l: Restriction, r: Restriction) -> Restriction {
    let mut children = Vec::new();
    for c in [l, r] {
        match c {
            Restriction::True => {}
            Restriction::And(mut inner) => children.append(&mut inner),
            other => children.push(other),
        }
    }
    match children.len() {
        0 => Restriction::True,
        1 => children.pop().expect("len 1"),
        _ => Restriction::And(children),
    }
}

fn or2(l: Restriction, r: Restriction) -> Restriction {
    let mut children = Vec::new();
    for c in [l, r] {
        match c {
            Restriction::Or(mut inner) => children.append(&mut inner),
            other => children.push(other),
        }
    }
    if children.iter().any(|c| matches!(c, Restriction::True)) {
        return Restriction::True;
    }
    match children.len() {
        0 => Restriction::True,
        1 => children.pop().expect("len 1"),
        _ => Restriction::Or(children),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn restriction_of(where_sql: &str) -> Restriction {
        let q = parse_query(&format!("SELECT a FROM t WHERE {where_sql}")).unwrap();
        Restriction::from_expr(&q.where_clause.unwrap())
    }

    #[test]
    fn in_list_normalizes() {
        let r = restriction_of(r#"search_string IN ("la redoute", "voyages sncf")"#);
        match r {
            Restriction::In { field, values, negated } => {
                assert_eq!(field, Expr::column("search_string"));
                assert_eq!(values, vec![Value::from("la redoute"), Value::from("voyages sncf")]);
                assert!(!negated);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_becomes_single_in() {
        let r = restriction_of("country = 'DE'");
        assert_eq!(
            r,
            Restriction::In {
                field: Expr::column("country"),
                values: vec![Value::from("DE")],
                negated: false
            }
        );
        let r = restriction_of("'DE' = country");
        assert!(matches!(r, Restriction::In { negated: false, .. }));
        let r = restriction_of("country != 'DE'");
        assert!(matches!(r, Restriction::In { negated: true, .. }));
    }

    #[test]
    fn not_pushes_down_de_morgan() {
        let r = restriction_of("NOT (country = 'DE' AND lang = 'de')");
        match r {
            Restriction::Or(children) => {
                assert_eq!(children.len(), 2);
                assert!(children
                    .iter()
                    .all(|c| matches!(c, Restriction::In { negated: true, .. })));
            }
            other => panic!("{other:?}"),
        }
        let r = restriction_of("NOT country IN ('US')");
        assert!(matches!(r, Restriction::In { negated: true, .. }));
        let r = restriction_of("NOT NOT country = 'US'");
        assert!(matches!(r, Restriction::In { negated: false, .. }));
    }

    #[test]
    fn conjunctions_flatten() {
        let r = restriction_of("a = 1 AND b = 2 AND c = 3");
        match r {
            Restriction::And(children) => assert_eq!(children.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn virtual_field_expressions_are_fields() {
        // §5: `date(timestamp) IN ('2012-02-29', ...)` skips via the
        // materialized virtual field's chunk dictionaries.
        let r = restriction_of("date(timestamp) IN ('2012-02-29')");
        match r {
            Restriction::In { field, .. } => {
                assert_eq!(field.canonical(), "date(timestamp)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparisons_become_ranges() {
        let r = restriction_of("latency > 100");
        assert_eq!(
            r,
            Restriction::Range {
                field: Expr::column("latency"),
                min: Some((Value::Int(100), false)),
                max: None
            }
        );
        let r = restriction_of("latency <= 100");
        assert!(matches!(r, Restriction::Range { min: None, max: Some((_, true)), .. }));
        // Literal on the left flips the comparison.
        let r = restriction_of("100 < latency");
        assert!(matches!(r, Restriction::Range { min: Some((_, false)), max: None, .. }));
        // Negation flips it too: NOT (x < v) == x >= v.
        let r = restriction_of("NOT latency < 100");
        assert!(matches!(r, Restriction::Range { min: Some((_, true)), max: None, .. }));
        let r = restriction_of("country = 'DE' AND latency > 100");
        match r {
            Restriction::And(children) => {
                assert!(matches!(children[0], Restriction::In { .. }));
                assert!(matches!(children[1], Restriction::Range { .. }));
            }
            other => panic!("{other:?}"),
        }
        // Column-to-column comparisons stay opaque.
        assert_eq!(restriction_of("latency > timestamp"), Restriction::Opaque);
    }

    #[test]
    fn discriminative_detection() {
        assert!(restriction_of("a = 1").is_discriminative());
        assert!(restriction_of("a = 1 AND contains(b, 'x')").is_discriminative());
        assert!(restriction_of("latency > 5").is_discriminative());
        assert!(!restriction_of("contains(b, 'x')").is_discriminative());
        // One opaque OR branch ruins skipping.
        assert!(!restriction_of("a = 1 OR contains(b, 'x')").is_discriminative());
        assert!(restriction_of("a = 1 OR b = 2").is_discriminative());
    }

    #[test]
    fn skip_fields_deduplicate() {
        let r = restriction_of("a = 1 AND a = 2 AND b IN (3)");
        let fields: Vec<String> = r.skip_fields().iter().map(|f| f.canonical()).collect();
        assert_eq!(fields, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn literal_only_predicates_are_opaque() {
        assert_eq!(restriction_of("1 = 1"), Restriction::Opaque);
        assert_eq!(restriction_of("1 IN (1, 2)"), Restriction::Opaque);
    }

    #[test]
    fn non_literal_in_lists_are_opaque() {
        assert_eq!(restriction_of("a IN (b, 2)"), Restriction::Opaque);
    }
}
