//! The §4 two-level rewrite for distributed execution.
//!
//! *"we rewrite the query to:*
//! ```sql
//! SELECT a, SUM(x) FROM
//!   (SELECT a, SUM(x) as x FROM S1 GROUP BY a)
//!   UNION ALL
//!   (SELECT a, SUM(x) as x FROM S2 GROUP BY a)
//! GROUP BY a;
//! ```
//! *This rewrite can be applied recursively, to support deeper trees. The
//! servers at the leaf level execute 'where' clauses and the root executes
//! any 'having' statements."*
//!
//! [`distributed_plan`] produces the leaf query each shard runs, the merge
//! recipe combining leaf outputs at every inner tree level, and the
//! displayable two-level SQL. `AVG` is decomposed into `SUM` + `COUNT`
//! ("if aggregations can be expressed by such associative ones"),
//! `COUNT(*)` merges by `SUM`, and `COUNT(DISTINCT ...)` is flagged for the
//! §5 sketch-merging path, since *"we cannot support count distinct by
//! that"*.

use crate::analyze::{analyze, OutputCol};
use crate::ast::*;
use pd_common::{Error, Result};

/// How the root combines one final output column from leaf columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeOp {
    /// Leaf column `i` is a group key: values pass through.
    Key(usize),
    /// Sum leaf column `i` (COUNT and SUM merge this way).
    Sum(usize),
    Min(usize),
    Max(usize),
    /// `AVG = SUM(sum_col) / SUM(count_col)`.
    AvgFromSumCount {
        sum: usize,
        count: usize,
    },
    /// Leaf column `i` carries a count-distinct sketch; union the sketches
    /// and read off the estimate (§5).
    SketchMerge(usize),
}

/// A distributed execution plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedPlan {
    /// The query each leaf (shard) executes: keys + partial aggregates,
    /// with the WHERE clause, without HAVING/ORDER/LIMIT.
    pub leaf: Query,
    /// Leaf column indices holding group keys.
    pub key_cols: Vec<usize>,
    /// For each *final* output column (in the original select order): its
    /// name and merge recipe over leaf columns.
    pub merge: Vec<(String, MergeOp)>,
    /// Root-level HAVING over final output names.
    pub having: Option<Expr>,
    /// Root-level ordering over final output columns.
    pub order_by: Vec<(usize, bool)>,
    pub limit: Option<usize>,
}

impl DistributedPlan {
    /// Render the paper-style two-level SQL over `n_shards` symbolic shard
    /// tables `S1..Sn` (for display and tests; execution merges partial
    /// states directly).
    pub fn two_level_sql(&self, n_shards: usize) -> Query {
        let members: Vec<Query> = (1..=n_shards)
            .map(|i| {
                let mut leaf = self.leaf.clone();
                leaf.from = TableRef::Table(format!("S{i}"));
                leaf
            })
            .collect();
        let leaf_names: Vec<String> =
            self.leaf.select.iter().map(SelectItem::output_name).collect();
        let select = self
            .merge
            .iter()
            .enumerate()
            .map(|(idx, (name, op))| {
                let expr = match op {
                    MergeOp::Key(i) => SelectExpr::Scalar(Expr::column(leaf_names[*i].clone())),
                    MergeOp::Sum(i) | MergeOp::SketchMerge(i) => SelectExpr::Aggregate(AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(Expr::column(leaf_names[*i].clone())),
                        distinct: false,
                    }),
                    MergeOp::Min(i) => SelectExpr::Aggregate(AggExpr {
                        func: AggFunc::Min,
                        arg: Some(Expr::column(leaf_names[*i].clone())),
                        distinct: false,
                    }),
                    MergeOp::Max(i) => SelectExpr::Aggregate(AggExpr {
                        func: AggFunc::Max,
                        arg: Some(Expr::column(leaf_names[*i].clone())),
                        distinct: false,
                    }),
                    MergeOp::AvgFromSumCount { sum, count } => SelectExpr::Scalar(Expr::binary(
                        BinaryOp::Div,
                        Expr::call("sum", vec![Expr::column(leaf_names[*sum].clone())]),
                        Expr::call("sum", vec![Expr::column(leaf_names[*count].clone())]),
                    )),
                };
                // Output names like `SUM(x)` are not valid identifiers;
                // rendered SQL gets a sanitized alias instead.
                let alias = if is_identifier(name) { name.clone() } else { format!("col{idx}") };
                SelectItem { expr, alias: Some(alias) }
            })
            .collect();
        Query {
            select,
            from: TableRef::UnionAll(members),
            where_clause: None,
            group_by: self.key_cols.iter().map(|i| Expr::column(leaf_names[*i].clone())).collect(),
            having: self.having.clone(),
            order_by: self
                .order_by
                .iter()
                .map(|(idx, desc)| OrderKey {
                    expr: Expr::column(self.merge[*idx].0.clone()),
                    desc: *desc,
                })
                .collect(),
            limit: self.limit,
        }
    }
}

fn is_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Build the distributed plan for a query.
pub fn distributed_plan(query: &Query) -> Result<DistributedPlan> {
    let analyzed = analyze(query)?;
    let Some(_) = analyzed.table else {
        return Err(Error::Unsupported(
            "cannot distribute a query that already reads a UNION ALL".into(),
        ));
    };

    // Leaf select list: group keys first, then partial aggregates.
    let mut leaf_select: Vec<SelectItem> = Vec::new();
    for (i, key) in analyzed.keys.iter().enumerate() {
        leaf_select.push(SelectItem {
            expr: SelectExpr::Scalar(key.clone()),
            alias: Some(format!("k{i}")),
        });
    }
    let key_cols: Vec<usize> = (0..analyzed.keys.len()).collect();

    // For each aggregate, append partial columns and record the merge op.
    let mut agg_merge: Vec<MergeOp> = Vec::with_capacity(analyzed.aggs.len());
    for (i, agg) in analyzed.aggs.iter().enumerate() {
        if agg.distinct {
            leaf_select.push(SelectItem {
                expr: SelectExpr::Aggregate(agg.clone()),
                alias: Some(format!("a{i}_sketch")),
            });
            agg_merge.push(MergeOp::SketchMerge(leaf_select.len() - 1));
            continue;
        }
        match agg.func {
            AggFunc::Count | AggFunc::Sum => {
                leaf_select.push(SelectItem {
                    expr: SelectExpr::Aggregate(agg.clone()),
                    alias: Some(format!("a{i}")),
                });
                agg_merge.push(MergeOp::Sum(leaf_select.len() - 1));
            }
            AggFunc::Min => {
                leaf_select.push(SelectItem {
                    expr: SelectExpr::Aggregate(agg.clone()),
                    alias: Some(format!("a{i}")),
                });
                agg_merge.push(MergeOp::Min(leaf_select.len() - 1));
            }
            AggFunc::Max => {
                leaf_select.push(SelectItem {
                    expr: SelectExpr::Aggregate(agg.clone()),
                    alias: Some(format!("a{i}")),
                });
                agg_merge.push(MergeOp::Max(leaf_select.len() - 1));
            }
            AggFunc::Avg => {
                // AVG(x) = SUM(SUM(x)) / SUM(COUNT(x)).
                let arg = agg.arg.clone().ok_or_else(|| {
                    Error::Internal("AVG without argument survived parsing".into())
                })?;
                leaf_select.push(SelectItem {
                    expr: SelectExpr::Aggregate(AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(arg.clone()),
                        distinct: false,
                    }),
                    alias: Some(format!("a{i}_sum")),
                });
                let sum = leaf_select.len() - 1;
                leaf_select.push(SelectItem {
                    expr: SelectExpr::Aggregate(AggExpr {
                        func: AggFunc::Count,
                        arg: Some(arg),
                        distinct: false,
                    }),
                    alias: Some(format!("a{i}_cnt")),
                });
                agg_merge.push(MergeOp::AvgFromSumCount { sum, count: leaf_select.len() - 1 });
            }
        }
    }

    let leaf = Query {
        select: leaf_select,
        from: query.from.clone(),
        where_clause: query.where_clause.clone(),
        group_by: analyzed.keys.clone(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    };

    // Final output columns in original order.
    let merge: Vec<(String, MergeOp)> = analyzed
        .output
        .iter()
        .map(|(name, src)| {
            let op = match src {
                OutputCol::Key(k) => MergeOp::Key(*k),
                OutputCol::Agg(a) => agg_merge[*a].clone(),
            };
            (name.clone(), op)
        })
        .collect();

    Ok(DistributedPlan {
        leaf,
        key_cols,
        merge,
        having: analyzed.having.clone(),
        order_by: analyzed.order_by.clone(),
        limit: analyzed.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn plan(sql: &str) -> DistributedPlan {
        distributed_plan(&parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn paper_section4_example() {
        let p = plan("SELECT a, SUM(x) FROM data GROUP BY a;");
        assert_eq!(p.leaf.group_by, vec![Expr::column("a")]);
        assert_eq!(p.merge.len(), 2);
        assert_eq!(p.merge[0].1, MergeOp::Key(0));
        assert_eq!(p.merge[1].1, MergeOp::Sum(1));
        // The two-level SQL matches the paper's rewrite shape.
        let sql = p.two_level_sql(2).to_string();
        assert!(sql.contains("UNION ALL"), "{sql}");
        assert!(sql.contains("GROUP BY"), "{sql}");
        // It must re-parse.
        let reparsed = parse_query(&sql).unwrap();
        assert!(matches!(reparsed.from, TableRef::UnionAll(ref m) if m.len() == 2));
    }

    #[test]
    fn count_star_merges_by_sum() {
        let p = plan(
            "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
        );
        assert_eq!(p.merge[1].1, MergeOp::Sum(1));
        assert_eq!(p.order_by, vec![(1, true)]);
        assert_eq!(p.limit, Some(10));
        // Leaf carries no ORDER/LIMIT (a leaf-level top-10 would be wrong).
        assert!(p.leaf.order_by.is_empty());
        assert_eq!(p.leaf.limit, None);
    }

    #[test]
    fn avg_decomposes_into_sum_and_count() {
        let p = plan("SELECT a, AVG(x) FROM data GROUP BY a");
        assert_eq!(p.leaf.select.len(), 3); // key, sum, count
        match p.merge[1].1 {
            MergeOp::AvgFromSumCount { sum, count } => {
                assert_eq!(sum, 1);
                assert_eq!(count, 2);
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn min_max_merge_naturally() {
        let p = plan("SELECT a, MIN(x), MAX(x) FROM data GROUP BY a");
        assert_eq!(p.merge[1].1, MergeOp::Min(1));
        assert_eq!(p.merge[2].1, MergeOp::Max(2));
    }

    #[test]
    fn count_distinct_uses_sketches() {
        let p = plan("SELECT country, COUNT(DISTINCT table_name) FROM data GROUP BY country");
        assert_eq!(p.merge[1].1, MergeOp::SketchMerge(1));
    }

    #[test]
    fn where_stays_at_leaves_having_at_root() {
        let p = plan(
            "SELECT country, COUNT(*) as c FROM data WHERE country != 'ZZ'
             GROUP BY country HAVING c > 100",
        );
        assert!(p.leaf.where_clause.is_some());
        assert!(p.leaf.having.is_none());
        assert_eq!(p.having.unwrap().to_string(), "(c > 100)");
    }

    #[test]
    fn recursive_rewrite_is_rejected() {
        let two_level = plan("SELECT a, SUM(x) FROM data GROUP BY a").two_level_sql(2);
        assert!(distributed_plan(&two_level).is_err());
    }
}
