//! Randomized property: rendering any generated query to canonical SQL and
//! re-parsing it yields the identical AST (display ∘ parse = id on the
//! canonical form). Driven by a seeded PRNG so failures reproduce exactly.

use pd_common::rng::Rng;
use pd_common::Value;
use pd_sql::{
    parse_query, AggExpr, AggFunc, BinaryOp, Expr, OrderKey, Query, SelectExpr, SelectItem,
    TableRef, UnaryOp,
};

const RESERVED: [&str; 26] = [
    "select", "from", "where", "group", "by", "having", "order", "limit", "as", "and", "or", "not",
    "in", "union", "all", "between", "asc", "desc", "count", "sum", "min", "max", "avg",
    "distinct", "true", "false",
];

fn random_literal(rng: &mut Rng) -> Expr {
    match rng.range_usize(0, 3) {
        0 => Expr::Literal(Value::Int(rng.next_u64() as i32 as i64)),
        1 => Expr::Literal(Value::Float(rng.range_i64_inclusive(-1000, 999) as f64 * 0.25)),
        _ => {
            const CHARS: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.-";
            let len = rng.range_usize(0, 12);
            let s: String =
                (0..len).map(|_| CHARS[rng.range_usize(0, CHARS.len())] as char).collect();
            Expr::Literal(Value::Str(s))
        }
    }
}

fn random_column(rng: &mut Rng) -> Expr {
    loop {
        let len = rng.range_usize(0, 8);
        let mut name = String::new();
        name.push((b'a' + rng.range_u64(0, 26) as u8) as char);
        const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        for _ in 0..len {
            name.push(TAIL[rng.range_usize(0, TAIL.len())] as char);
        }
        if !RESERVED.contains(&name.as_str()) {
            return Expr::Column(name);
        }
    }
}

fn random_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.chance(0.3) {
        return if rng.chance(0.5) { random_literal(rng) } else { random_column(rng) };
    }
    match rng.range_usize(0, 5) {
        0 => {
            let ops = [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Eq,
                BinaryOp::Ne,
                BinaryOp::Lt,
                BinaryOp::Le,
                BinaryOp::Gt,
                BinaryOp::Ge,
                BinaryOp::And,
                BinaryOp::Or,
            ];
            let op = ops[rng.range_usize(0, ops.len())];
            Expr::binary(op, random_expr(rng, depth - 1), random_expr(rng, depth - 1))
        }
        1 => Expr::Unary { op: UnaryOp::Not, expr: Box::new(random_expr(rng, depth - 1)) },
        2 => {
            let list = (0..rng.range_usize(1, 4)).map(|_| random_literal(rng)).collect();
            Expr::InList {
                expr: Box::new(random_expr(rng, depth - 1)),
                list,
                negated: rng.chance(0.5),
            }
        }
        3 => Expr::call("date", vec![random_expr(rng, depth - 1)]),
        _ => Expr::call("contains", vec![random_expr(rng, depth - 1), random_literal(rng)]),
    }
}

fn random_agg(rng: &mut Rng) -> AggExpr {
    match rng.range_usize(0, 5) {
        0 => AggExpr::count_star(),
        1 => AggExpr { func: AggFunc::Sum, arg: Some(random_column(rng)), distinct: false },
        2 => AggExpr { func: AggFunc::Min, arg: Some(random_column(rng)), distinct: false },
        3 => AggExpr { func: AggFunc::Avg, arg: Some(random_column(rng)), distinct: false },
        _ => AggExpr { func: AggFunc::Count, arg: Some(random_column(rng)), distinct: true },
    }
}

fn random_query(rng: &mut Rng) -> Query {
    let keys: Vec<Expr> = (0..rng.range_usize(0, 2)).map(|_| random_column(rng)).collect();
    let aggs: Vec<AggExpr> = (0..rng.range_usize(1, 3)).map(|_| random_agg(rng)).collect();
    let where_clause = rng.chance(0.5).then(|| random_expr(rng, 3));
    let limit = rng.chance(0.5).then(|| rng.range_usize(0, 100));

    let mut select: Vec<SelectItem> = keys
        .iter()
        .map(|k| SelectItem { expr: SelectExpr::Scalar(k.clone()), alias: None })
        .collect();
    for (i, a) in aggs.into_iter().enumerate() {
        select.push(SelectItem { expr: SelectExpr::Aggregate(a), alias: Some(format!("agg{i}")) });
    }
    let order_by = if rng.chance(0.5) {
        let idx = rng.range_usize(0, 2).min(select.len() - 1);
        vec![OrderKey {
            expr: match &select[idx].expr {
                SelectExpr::Scalar(e) => e.clone(),
                SelectExpr::Aggregate(_) => {
                    Expr::column(select[idx].alias.clone().expect("aggs aliased"))
                }
            },
            desc: rng.chance(0.5),
        }]
    } else {
        Vec::new()
    };
    Query {
        select,
        from: TableRef::Table("data".into()),
        where_clause,
        group_by: keys,
        having: None,
        order_by,
        limit,
    }
}

/// Canonical SQL text is a fixed point: parse(display(q)) == q.
#[test]
fn display_then_parse_is_identity() {
    let mut rng = Rng::seed_from_u64(0x5a1_0001);
    for _ in 0..128 {
        let q = random_query(&mut rng);
        let sql = q.to_string();
        let reparsed = parse_query(&sql)
            .unwrap_or_else(|e| panic!("canonical SQL failed to parse: {e}\nsql: {sql}"));
        assert_eq!(reparsed, q, "sql: {sql}");
    }
}

/// Expressions alone round-trip through their canonical text too.
#[test]
fn expr_canonical_round_trips() {
    let mut rng = Rng::seed_from_u64(0x5a1_0002);
    for _ in 0..128 {
        let e = random_expr(&mut rng, 3);
        let sql = format!("SELECT COUNT(*) FROM t WHERE {e}");
        let q =
            parse_query(&sql).unwrap_or_else(|err| panic!("failed to parse: {err}\nsql: {sql}"));
        assert_eq!(q.where_clause.unwrap(), e, "sql: {sql}");
    }
}

/// The lexer/parser never panic on arbitrary input.
#[test]
fn parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0x5a1_0003);
    for _ in 0..128 {
        let len = rng.range_usize(0, 200);
        let input: String = (0..len)
            .map(|_| {
                // Printable ASCII plus a sprinkling of non-ASCII codepoints.
                if rng.chance(0.9) {
                    char::from_u32(rng.range_u64(0x20, 0x7f) as u32).unwrap()
                } else {
                    char::from_u32(rng.range_u64(0xa1, 0x2fff) as u32).unwrap_or('ß')
                }
            })
            .collect();
        let _ = parse_query(&input);
    }
}
