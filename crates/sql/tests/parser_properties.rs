//! Property test: rendering any generated query to canonical SQL and
//! re-parsing it yields the identical AST (display ∘ parse = id on the
//! canonical form).

use pd_common::Value;
use pd_sql::{
    parse_query, AggExpr, AggFunc, BinaryOp, Expr, OrderKey, Query, SelectExpr, SelectItem,
    TableRef, UnaryOp,
};
use proptest::prelude::*;

fn arb_literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|v| Expr::Literal(Value::Int(v as i64))),
        (-1000i32..1000).prop_map(|v| Expr::Literal(Value::Float(v as f64 * 0.25))),
        "[a-zA-Z0-9 _.-]{0,12}".prop_map(|s| Expr::Literal(Value::Str(s))),
    ]
}

fn arb_column() -> impl Strategy<Value = Expr> {
    "[a-z][a-z0-9_]{0,8}"
        .prop_filter("not reserved", |s| {
            !["select", "from", "where", "group", "by", "having", "order", "limit", "as",
              "and", "or", "not", "in", "union", "all", "between", "asc", "desc",
              "count", "sum", "min", "max", "avg", "distinct"]
                .contains(&s.as_str())
        })
        .prop_map(Expr::Column)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![arb_literal(), arb_column()];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinaryOp::Add), Just(BinaryOp::Sub), Just(BinaryOp::Mul), Just(BinaryOp::Div),
                Just(BinaryOp::Eq), Just(BinaryOp::Ne), Just(BinaryOp::Lt), Just(BinaryOp::Le),
                Just(BinaryOp::Gt), Just(BinaryOp::Ge), Just(BinaryOp::And), Just(BinaryOp::Or),
            ])
                .prop_map(|(l, r, op)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            (inner.clone(), proptest::collection::vec(arb_literal(), 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (Just("date"), inner.clone()).prop_map(|(name, a)| Expr::call(name, vec![a])),
            (Just("contains"), inner.clone(), arb_literal())
                .prop_map(|(name, a, b)| Expr::call(name, vec![a, b])),
        ]
    })
}

fn arb_agg() -> impl Strategy<Value = AggExpr> {
    prop_oneof![
        Just(AggExpr::count_star()),
        arb_column().prop_map(|c| AggExpr { func: AggFunc::Sum, arg: Some(c), distinct: false }),
        arb_column().prop_map(|c| AggExpr { func: AggFunc::Min, arg: Some(c), distinct: false }),
        arb_column().prop_map(|c| AggExpr { func: AggFunc::Avg, arg: Some(c), distinct: false }),
        arb_column().prop_map(|c| AggExpr { func: AggFunc::Count, arg: Some(c), distinct: true }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(arb_column(), 0..2),
        proptest::collection::vec(arb_agg(), 1..3),
        proptest::option::of(arb_expr()),
        proptest::option::of((0usize..2, any::<bool>())),
        proptest::option::of(0usize..100),
    )
        .prop_map(|(keys, aggs, where_clause, order, limit)| {
            let mut select: Vec<SelectItem> = keys
                .iter()
                .map(|k| SelectItem { expr: SelectExpr::Scalar(k.clone()), alias: None })
                .collect();
            for (i, a) in aggs.into_iter().enumerate() {
                select.push(SelectItem {
                    expr: SelectExpr::Aggregate(a),
                    alias: Some(format!("agg{i}")),
                });
            }
            let order_by = order
                .map(|(idx, desc)| {
                    let idx = idx.min(select.len() - 1);
                    vec![OrderKey {
                        expr: match &select[idx].expr {
                            SelectExpr::Scalar(e) => e.clone(),
                            SelectExpr::Aggregate(_) => {
                                Expr::column(select[idx].alias.clone().expect("aggs aliased"))
                            }
                        },
                        desc,
                    }]
                })
                .unwrap_or_default();
            Query {
                select,
                from: TableRef::Table("data".into()),
                where_clause,
                group_by: keys,
                having: None,
                order_by,
                limit,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonical SQL text is a fixed point: parse(display(q)) == q.
    #[test]
    fn display_then_parse_is_identity(q in arb_query()) {
        let sql = q.to_string();
        let reparsed = parse_query(&sql)
            .unwrap_or_else(|e| panic!("canonical SQL failed to parse: {e}\nsql: {sql}"));
        prop_assert_eq!(reparsed, q, "sql: {}", sql);
    }

    /// Expressions alone round-trip through their canonical text too.
    #[test]
    fn expr_canonical_round_trips(e in arb_expr()) {
        let sql = format!("SELECT COUNT(*) FROM t WHERE {e}");
        let q = parse_query(&sql)
            .unwrap_or_else(|err| panic!("failed to parse: {err}\nsql: {sql}"));
        prop_assert_eq!(q.where_clause.unwrap(), e, "sql: {}", sql);
    }

    /// The lexer/parser never panic on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse_query(&input);
    }
}
