//! Pins the canonical renderings that the distributed cache key
//! (`pd_dist::query_signature`) concatenates. Worker processes cache
//! partial results under `Expr::canonical()` / `AggExpr` display strings,
//! so these strings are a **wire format**: changing any of them silently
//! invalidates every warm cache in a rolling deploy. If one of these
//! assertions fails, you are changing the cache-key format — bump it
//! deliberately (and expect a cold cluster), don't drift into it.

use pd_sql::{analyze, parse_query, AnalyzedQuery};

fn analyzed(sql: &str) -> AnalyzedQuery {
    analyze(&parse_query(sql).unwrap()).unwrap()
}

/// The exact fragments `query_signature` joins: canonical keys, displayed
/// aggregates, canonical filter (empty when absent).
fn fragments(sql: &str) -> (String, String, String) {
    let q = analyzed(sql);
    (
        q.keys.iter().map(|k| k.canonical()).collect::<Vec<_>>().join(","),
        q.aggs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(","),
        q.filter.as_ref().map(|f| f.canonical()).unwrap_or_default(),
    )
}

#[test]
fn key_expressions_render_canonically() {
    let (keys, _, _) = fragments("SELECT country, COUNT(*) c FROM logs GROUP BY country");
    assert_eq!(keys, "country");

    let (keys, _, _) =
        fragments("SELECT date(timestamp) d, country, COUNT(*) c FROM logs GROUP BY d, country");
    assert_eq!(keys, "date(timestamp),country");
}

#[test]
fn aggregates_render_canonically() {
    let (_, aggs, _) = fragments(
        "SELECT COUNT(*) n, SUM(latency) s, MIN(user) lo, MAX(user) hi, AVG(latency) a, \
         COUNT(DISTINCT country) k FROM logs",
    );
    assert_eq!(
        aggs,
        "COUNT(*),SUM(latency),MIN(user),MAX(user),AVG(latency),COUNT(DISTINCT country)"
    );
}

#[test]
fn filters_render_canonically() {
    // Comparisons are parenthesized, string literals are double-quoted.
    let (_, _, filter) = fragments("SELECT COUNT(*) FROM logs WHERE latency > 100");
    assert_eq!(filter, "(latency > 100)");

    let (_, _, filter) = fragments("SELECT COUNT(*) FROM logs WHERE country = 'DE'");
    assert_eq!(filter, "(country = \"DE\")");

    let (_, _, filter) =
        fragments("SELECT COUNT(*) FROM logs WHERE country IN ('DE', 'FR') AND NOT latency > 100");
    assert_eq!(filter, "((country IN (\"DE\", \"FR\")) AND (NOT ((latency > 100))))");

    // Embedded quotes are escaped, so distinct literals can never collide
    // into one key.
    let (_, _, filter) = fragments(r#"SELECT COUNT(*) FROM logs WHERE user = 'say "hi" bye'"#);
    assert_eq!(filter, r#"(user = "say \"hi\" bye")"#);
}

#[test]
fn canonical_forms_ignore_presentation_but_not_semantics() {
    // The cache key is built from (table, keys, aggs, filter) only —
    // aliases, HAVING, ORDER BY and LIMIT are finalize-time presentation.
    let base = fragments("SELECT country, COUNT(*) c FROM logs GROUP BY country");
    assert_eq!(
        base,
        fragments(
            "SELECT country, COUNT(*) total FROM logs GROUP BY country \
             HAVING total > 3 ORDER BY total DESC LIMIT 5"
        )
    );

    // But anything touching the partial computation must differ.
    for other in [
        "SELECT country, COUNT(*) c FROM logs WHERE country = 'DE' GROUP BY country",
        "SELECT table_name, COUNT(*) c FROM logs GROUP BY table_name",
        "SELECT country, SUM(latency) c FROM logs GROUP BY country",
    ] {
        assert_ne!(base, fragments(other), "{other}");
    }
}

#[test]
fn canonical_text_reparses_to_the_same_canonical_text() {
    // canonical ∘ parse ∘ canonical = canonical: a signature computed from
    // re-rendered SQL (e.g. a forwarded query) matches the original's.
    for sql in [
        "SELECT country, COUNT(*) c FROM logs WHERE latency > 100 AND country IN ('DE','FR') \
         GROUP BY country",
        "SELECT date(timestamp) d, AVG(latency) a FROM logs GROUP BY d",
    ] {
        let (keys, aggs, filter) = fragments(sql);
        let round = format!(
            "SELECT {}{}COUNT(*) c FROM logs{} GROUP BY {}",
            keys.replace(',', ", "),
            if keys.is_empty() { "" } else { ", " },
            if filter.is_empty() { String::new() } else { format!(" WHERE {filter}") },
            keys.replace(',', ", "),
        );
        let (keys2, _, filter2) = fragments(&round);
        assert_eq!(keys, keys2, "{sql}");
        assert_eq!(filter, filter2, "{sql}");
        let _ = aggs;
    }
}
