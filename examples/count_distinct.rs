//! Approximate count distinct (§5): *"for many analyses it is important to
//! be able to quickly compute the number of distinct values of a field
//! grouped by another field. As an example, consider counting the number of
//! distinct table names per country."* — this example runs exactly that.
//!
//! ```bash
//! cargo run --release --example count_distinct
//! ```

use powerdrill::core::{execute, ExecContext};
use powerdrill::data::{generate_logs, LogsSpec};
use powerdrill::sql::{analyze, parse_query};
use powerdrill::{BuildOptions, DataStore};

fn main() -> powerdrill::Result<()> {
    let rows = std::env::var("PD_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000);
    println!("generating {rows} rows ...");
    let table = generate_logs(&LogsSpec::scaled(rows));
    let store = DataStore::build(&table, &BuildOptions::production(&["country", "table_name"]))?;

    // The paper's own example query.
    let sql = "SELECT country, COUNT(DISTINCT table_name) as tables, COUNT(*) as queries \
               FROM logs GROUP BY country ORDER BY queries DESC LIMIT 8";
    let analyzed = analyze(&parse_query(sql)?)?;

    // Exact reference (a saturated sketch is exact).
    let exact_ctx = ExecContext { sketch_m: 1 << 22, ..Default::default() };
    let (exact, _) = execute(&store, &analyzed, &exact_ctx)?;

    println!("\nexact:\n{}", exact.render());

    for m in [512usize, 4096] {
        let ctx = ExecContext { sketch_m: m, ..Default::default() };
        let (approx, stats) = execute(&store, &analyzed, &ctx)?;
        println!("approximate with m = {m} (latency {:?}):", stats.elapsed);
        // Show estimates next to exact values.
        for (row, exact_row) in approx.rows.iter().zip(&exact.rows) {
            let country = row.get(0).render().into_owned();
            let est = row.get(1).as_int().unwrap_or(0);
            let truth = exact_row.get(1).as_int().unwrap_or(0);
            let err =
                if truth > 0 { 100.0 * (est - truth).abs() as f64 / truth as f64 } else { 0.0 };
            println!("  {country:<4} estimate {est:>6}  exact {truth:>6}  error {err:>5.1}%");
        }
    }
    println!("\n(the sketch keeps the m smallest hash values; estimate = m/v, §5)");
    Ok(())
}
