//! Distributed execution (§4): shards, the computation-tree rewrite, and
//! the primary/replica scheme riding out stragglers.
//!
//! ```bash
//! cargo run --release --example distributed
//! ```

use powerdrill::data::{generate_logs, LogsSpec};
use powerdrill::dist::{Cluster, ClusterConfig, DrillDownWorkload, LoadModel, WorkloadSpec};
use powerdrill::sql::{distributed_plan, parse_query};
use powerdrill::BuildOptions;

fn main() -> powerdrill::Result<()> {
    let rows = std::env::var("PD_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000);
    println!("generating {rows} rows and building an 8-shard cluster ...");
    let table = generate_logs(&LogsSpec::scaled(rows));

    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = (rows / 8 / 60).clamp(200, 50_000);
    }
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 8,
            build,
            load: LoadModel { busy_probability: 0.25, blocked_probability: 0.05, seed: 1 },
            ..Default::default()
        },
    )?;

    // Show the paper's §4 SQL rewrite for a query.
    let sql =
        "SELECT country, SUM(latency) as s FROM logs GROUP BY country ORDER BY s DESC LIMIT 5";
    let plan = distributed_plan(&parse_query(sql)?)?;
    println!("\noriginal     : {sql}");
    println!("leaf query   : {}", plan.leaf);
    println!("two-level    : {}", plan.two_level_sql(2));

    let outcome = cluster.query(sql)?;
    println!("\n{}", outcome.result.render());
    println!(
        "modeled end-to-end latency {:?} | slowest shard {:?} | fastest shard {:?}",
        outcome.latency,
        outcome.subquery_latencies.iter().max().unwrap(),
        outcome.subquery_latencies.iter().min().unwrap(),
    );

    // A click's worth of drill-down queries, like the production workload.
    let workload = DrillDownWorkload::generate(
        &table,
        &WorkloadSpec { clicks: 3, queries_per_click: 5, ..Default::default() },
    )?;
    println!("\nreplaying {} queries from 3 UI clicks ...", workload.query_count());
    let mut total = powerdrill::ScanStats::default();
    for click in &workload.clicks {
        for q in &click.queries {
            total += &cluster.query(q)?.stats;
        }
    }
    println!(
        "rows: {:5.2}% skipped, {:5.2}% cached, {:5.2}% scanned",
        100.0 * total.skipped_fraction(),
        100.0 * total.cached_fraction(),
        100.0 * total.scanned_fraction()
    );
    Ok(())
}
