//! The introduction's drill-down story: *"A user can quickly drill down to
//! values of interest, e.g., all German searches from yesterday afternoon
//! that contain the word 'auto', by restricting a set of charts to these
//! values."*
//!
//! Each drill-down step adds a conjunct; the chunk dictionaries let the
//! store skip more and more of the data.
//!
//! ```bash
//! cargo run --release --example drilldown
//! ```

use powerdrill::data::{generate_searches, SearchesSpec};
use powerdrill::{BuildOptions, PowerDrill};

fn main() -> powerdrill::Result<()> {
    let rows = std::env::var("PD_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000);
    println!("generating {rows} web searches ...");
    let table = generate_searches(&SearchesSpec::scaled(rows));
    let mut options = BuildOptions::production(&["country", "search_string"]);
    if let Some(spec) = &mut options.partition {
        spec.max_chunk_rows = (rows / 100).clamp(200, 50_000);
    }
    let pd = PowerDrill::import(&table, &options)?;

    // Drill-down steps: each adds one restriction, exactly like clicking
    // into a chart in the UI.
    let steps = [
        ("all searches", None),
        ("... from Germany", Some("country = 'DE'")),
        ("... containing 'auto'", Some("country = 'DE' AND contains(search_string, 'auto')")),
        (
            "... yesterday afternoon",
            Some(
                "country = 'DE' AND contains(search_string, 'auto') \
                 AND date(timestamp) = '2011-10-07' AND hour(timestamp) >= 12",
            ),
        ),
    ];

    for (title, filter) in steps {
        let where_clause = filter.map(|f| format!(" WHERE {f}")).unwrap_or_default();
        let sql = format!(
            "SELECT search_string, COUNT(*) as c FROM searches{where_clause} \
             GROUP BY search_string ORDER BY c DESC LIMIT 5"
        );
        let (result, stats) = pd.sql(&sql)?;
        println!("\n== {title}");
        println!("{}", result.render());
        println!(
            "skipped {:5.1}% | cached {:5.1}% | scanned {:5.1}% | latency {:?}",
            100.0 * stats.skipped_fraction(),
            100.0 * stats.cached_fraction(),
            100.0 * stats.scanned_fraction(),
            stats.elapsed
        );
    }
    Ok(())
}
