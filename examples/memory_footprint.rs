//! The §3 optimization ladder, live: build the same dataset six ways and
//! print the per-query memory footprints (the shape of Table 4).
//!
//! ```bash
//! cargo run --release --example memory_footprint
//! ```

use powerdrill::compress::CodecKind;
use powerdrill::core::memory::{compressed_for_query, report_for_query};
use powerdrill::data::{generate_logs, LogsSpec};
use powerdrill::{BuildOptions, DataStore, PartitionSpec};

fn main() -> powerdrill::Result<()> {
    let rows = std::env::var("PD_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000);
    println!("generating {rows} rows ...");
    let table = generate_logs(&LogsSpec::scaled(rows));
    let spec = PartitionSpec::new(&["country", "table_name"], 50_000.min(rows / 10).max(100));

    let queries = [
        ("Q1", "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10"),
        ("Q2", "SELECT date(timestamp) as d, COUNT(*), SUM(latency) FROM data GROUP BY d ORDER BY d ASC LIMIT 10"),
        ("Q3", "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10"),
    ];
    let variants: [(&str, BuildOptions); 5] = [
        ("Basic", BuildOptions::basic()),
        ("Chunks", BuildOptions::chunked(spec.clone())),
        ("OptCols", BuildOptions::optcols(spec.clone())),
        ("OptDicts", BuildOptions::optdicts(spec.clone())),
        ("Reorder", BuildOptions::reordered(spec)),
    ];

    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    println!(
        "\n{:<10} {:>10} {:>10} {:>10}   (uncompressed MB per query)",
        "Variant", "Q1", "Q2", "Q3"
    );
    let mut stores = Vec::new();
    for (name, options) in &variants {
        let store = DataStore::build(&table, options)?;
        let sizes: Vec<f64> = queries
            .iter()
            .map(|(_, sql)| {
                Ok::<f64, powerdrill::Error>(mb(report_for_query(&store, sql)?.total()))
            })
            .collect::<Result<_, _>>()?;
        println!("{:<10} {:>10.3} {:>10.3} {:>10.3}", name, sizes[0], sizes[1], sizes[2]);
        stores.push((name, store));
    }

    // The "Zippy" row of Table 4: compressed sizes of the best layout.
    let (_, best) = stores.last().expect("variants built");
    let compressed: Vec<f64> = queries
        .iter()
        .map(|(_, sql)| {
            Ok::<f64, powerdrill::Error>(mb(compressed_for_query(best, sql, CodecKind::Zippy)?))
        })
        .collect::<Result<_, _>>()?;
    println!(
        "{:<10} {:>10.3} {:>10.3} {:>10.3}   (Reorder layout, Zippy-compressed)",
        "Zippy", compressed[0], compressed[1], compressed[2]
    );
    Ok(())
}
