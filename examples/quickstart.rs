//! Quickstart: import a log table and run the paper's three experiment
//! queries (§2.5).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use powerdrill::data::{generate_logs, LogsSpec};
use powerdrill::{BuildOptions, PowerDrill};

fn main() -> powerdrill::Result<()> {
    let rows = std::env::var("PD_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000);
    println!("generating {rows} rows of PowerDrill-style query logs ...");
    let table = generate_logs(&LogsSpec::scaled(rows));

    println!("importing (partition by country, table_name; all §3 optimizations on) ...");
    let mut options = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut options.partition {
        // Keep the paper's chunk-count-to-row ratio at any scale.
        spec.max_chunk_rows = (rows / 100).clamp(500, 50_000);
    }
    let pd = PowerDrill::import(&table, &options)?;

    let queries = [
        ("Query 1: top 10 countries",
         "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10"),
        ("Query 2: number of queries and overall latency per day",
         "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data GROUP BY date ORDER BY date ASC LIMIT 10"),
        ("Query 3: top 10 table-names",
         "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10"),
    ];

    for (title, sql) in queries {
        println!("\n== {title}\n   {sql}");
        let (result, stats) = pd.sql(sql)?;
        println!("{}", result.render());
        println!("latency: {:?} | {}", stats.elapsed, stats.summary());
        let memory = pd.memory_for(sql)?;
        println!(
            "memory touched by this query: {:.2} MB",
            memory.total() as f64 / (1024.0 * 1024.0)
        );
    }
    Ok(())
}
