//! One node of the §4 computation tree: `pd-worker --socket <path>` —
//! the same server as `pd-dist`'s `pd-dist-worker` binary.
//!
//! This thin wrapper exists in the root package (under a distinct target
//! name, to avoid an output-filename collision with `pd-dist`'s bin) so
//! the workspace-level integration tests get a `CARGO_BIN_EXE_pd-worker`
//! path from cargo even when only the root package is built.

fn main() {
    std::process::exit(powerdrill::dist::worker::worker_main());
}
