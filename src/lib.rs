//! # PowerDrill — "Processing a Trillion Cells per Mouse Click" in Rust
//!
//! A from-scratch reproduction of the column-store presented by Hall,
//! Bachmann, Büssow, Gănceanu and Nunkesser (Google) at VLDB 2012: an
//! in-memory, dictionary-encoded column-store whose composite range
//! partitioning lets interactive group-by queries *skip* most of the data
//! instead of scanning it.
//!
//! ```
//! use powerdrill::{BuildOptions, PowerDrill};
//! use powerdrill::data::{generate_logs, LogsSpec};
//!
//! // 1. Import a table (here: synthetic query logs shaped like the
//! //    paper's own — timestamp, table_name, latency, country, user).
//! //    Production uses 50'000-row chunks; this toy dataset uses 1'000.
//! let table = generate_logs(&LogsSpec::scaled(10_000));
//! let mut options = BuildOptions::production(&["country", "table_name"]);
//! options.partition.as_mut().unwrap().max_chunk_rows = 1_000;
//! let pd = PowerDrill::import(&table, &options).unwrap();
//!
//! // 2. Ask SQL questions. This is the paper's Query 1.
//! let (result, stats) = pd
//!     .sql("SELECT country, COUNT(*) as c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10")
//!     .unwrap();
//! assert_eq!(result.columns, vec!["country", "c"]);
//!
//! // 3. Drill down — restrictions skip chunks via the chunk dictionaries.
//! let (_, stats2) = pd
//!     .sql("SELECT country, COUNT(*) as c FROM logs WHERE country = 'JP' GROUP BY country")
//!     .unwrap();
//! assert!(stats2.rows_skipped > 0);
//! assert_eq!(stats.rows_skipped, 0);
//! ```
//!
//! ## Parallel execution
//!
//! Queries run **morsel-parallel across chunks**: the paper's per-chunk
//! independence (immutable chunks, mergeable group states — the same
//! property §4 exploits across machines) is exploited across cores by a
//! persistent worker pool shared by every query (and by [`Cluster`]'s
//! shard fan-out). The [`ExecContext::threads`] knob controls the worker
//! count — `0` (the default) reads `EXEC_THREADS` or uses the machine's
//! available parallelism, `1` forces sequential execution — and results
//! are **bit-identical** at every setting: per-chunk partials are folded
//! in chunk order and float sums use an exact superaccumulator
//! ([`common::FloatSum`]), so even `SUM`/`AVG` over floats do not depend
//! on how rows were chunked, threaded or sharded.
//!
//! The per-chunk inner loops are dictionary-code kernels
//! (`pd_core::kernels`): `WHERE` clauses tabulate into packed bit-vector
//! masks once per chunk, single-key `COUNT(*)` stays the paper's literal
//! `counts[elements[row]]++` over raw codes (folded through the chunk
//! dictionary without materializing per-group values), and two-key
//! group-bys fuse into one flat array index.
//!
//! ```
//! use powerdrill::{core::execute, sql, BuildOptions, DataStore, ExecContext};
//! use powerdrill::data::{generate_logs, LogsSpec};
//!
//! let table = generate_logs(&LogsSpec::scaled(5_000));
//! let store = DataStore::build(&table, &BuildOptions::production(&["country"])).unwrap();
//! let q = sql::analyze(&sql::parse_query("SELECT country, COUNT(*) c FROM logs GROUP BY country").unwrap()).unwrap();
//! let sequential = ExecContext { threads: 1, ..Default::default() };
//! let parallel = ExecContext { threads: 8, ..Default::default() };
//! let (a, _) = execute(&store, &q, &sequential).unwrap();
//! let (b, _) = execute(&store, &q, &parallel).unwrap();
//! assert_eq!(a, b); // bit-identical, not just approximately equal
//! ```
//!
//! The workspace crates are re-exported under topic names: [`common`],
//! [`compress`], [`encoding`], [`sql`], [`data`], [`core`], [`baselines`],
//! [`dist`].

#![forbid(unsafe_code)]

pub use pd_baselines as baselines;
pub use pd_common as common;
pub use pd_compress as compress;
pub use pd_core as core;
pub use pd_data as data;
pub use pd_dist as dist;
pub use pd_encoding as encoding;
pub use pd_sql as sql;

pub use pd_common::{DataType, Error, Result, Row, Schema, Value};
pub use pd_core::{
    query, BuildOptions, CachePolicy, DataStore, ExecContext, KernelConfig, PartitionSpec,
    QueryResult, ResultCache, ScanStats, TieredCache,
};
pub use pd_data::Table;
pub use pd_dist::{Cluster, ClusterConfig};

use std::sync::Arc;

/// The high-level handle: an imported dataset plus warm caches.
///
/// This is the single-machine equivalent of one PowerDrill server; for the
/// multi-machine setup see [`Cluster`].
pub struct PowerDrill {
    store: DataStore,
    ctx: ExecContext,
}

impl PowerDrill {
    /// Import `table` under `options`, with the chunk-result cache and the
    /// two-layer residency cache enabled (256 MiB uncompressed / 128 MiB
    /// compressed by default).
    pub fn import(table: &Table, options: &BuildOptions) -> Result<PowerDrill> {
        let store = DataStore::build(table, options)?;
        let ctx = ExecContext {
            sketch_m: 0,
            threads: 0, // auto: one worker per available core
            result_cache: Some(Arc::new(ResultCache::new(1 << 16))),
            tiered: Some(Arc::new(TieredCache::new(CachePolicy::Arc, 256 << 20, 128 << 20))),
            kernels: KernelConfig::default(),
        };
        Ok(PowerDrill { store, ctx })
    }

    /// Import without caches (every query scans cold — useful for
    /// benchmarking the raw data structures).
    pub fn import_uncached(table: &Table, options: &BuildOptions) -> Result<PowerDrill> {
        Ok(PowerDrill { store: DataStore::build(table, options)?, ctx: ExecContext::default() })
    }

    /// Run a SQL query. Any table name in `FROM` refers to this dataset.
    pub fn sql(&self, sql: &str) -> Result<(QueryResult, ScanStats)> {
        let parsed = pd_sql::parse_query(sql)?;
        let analyzed = pd_sql::analyze(&parsed)?;
        pd_core::execute(&self.store, &analyzed, &self.ctx)
    }

    /// The underlying store.
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// Memory report for the columns a query touches (the paper's
    /// per-query memory metric).
    pub fn memory_for(&self, sql: &str) -> Result<pd_core::MemoryReport> {
        pd_core::memory::report_for_query(&self.store, sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_data::{generate_logs, LogsSpec};

    #[test]
    fn import_and_query() {
        let table = generate_logs(&LogsSpec::scaled(1_000));
        let pd = PowerDrill::import(&table, &BuildOptions::production(&["country"])).unwrap();
        let (result, _) = pd.sql("SELECT COUNT(*) FROM logs").unwrap();
        assert_eq!(result.rows[0].0[0], Value::Int(1_000));
    }

    #[test]
    fn repeated_queries_hit_caches() {
        let table = generate_logs(&LogsSpec::scaled(1_000));
        let mut options = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut options.partition {
            spec.max_chunk_rows = 100;
        }
        let pd = PowerDrill::import(&table, &options).unwrap();
        let sql = "SELECT country, COUNT(*) as c FROM logs GROUP BY country ORDER BY c DESC";
        let (a, cold) = pd.sql(sql).unwrap();
        let (b, warm) = pd.sql(sql).unwrap();
        assert_eq!(a, b);
        assert!(warm.rows_cached > 0, "second run served from cache: {}", warm.summary());
        assert!(cold.rows_cached == 0);
    }

    #[test]
    fn memory_report_is_per_query() {
        let table = generate_logs(&LogsSpec::scaled(1_000));
        let pd = PowerDrill::import(&table, &BuildOptions::basic()).unwrap();
        let narrow = pd.memory_for("SELECT country, COUNT(*) FROM logs GROUP BY country").unwrap();
        let wide = pd
            .memory_for("SELECT table_name, COUNT(*), SUM(latency) FROM logs GROUP BY table_name")
            .unwrap();
        assert!(narrow.total() < wide.total());
    }
}
