//! Failure-injection tests for the §4 serving tree: a shard primary
//! killed mid-fan-out must fail over to its replication peer with the
//! *same* result (the replica holds the same partition), record the
//! failover in the outcome, and — because failures are drawn from seeded
//! per-(query, shard) streams — reproduce exactly across runs.

use powerdrill::data::{generate_logs, LogsSpec};
use powerdrill::dist::{Cluster, ClusterConfig, FailureModel};
use powerdrill::{BuildOptions, DataStore};

const QUERIES: [&str; 4] = [
    "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT table_name, COUNT(*) c, SUM(latency) s FROM logs GROUP BY table_name ORDER BY c DESC",
    "SELECT country, AVG(latency) a FROM logs WHERE latency > 200.0 GROUP BY country ORDER BY country ASC",
    "SELECT COUNT(*) FROM logs WHERE country = 'DE'",
];

fn build_options() -> BuildOptions {
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    build
}

fn cluster_with(failures: FailureModel, replication: bool, shards: usize) -> Cluster {
    let table = generate_logs(&LogsSpec::scaled(1_200));
    Cluster::build(
        &table,
        &ClusterConfig {
            shards,
            replication,
            failures,
            build: build_options(),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn killed_primary_fails_over_with_identical_results() {
    let table = generate_logs(&LogsSpec::scaled(1_200));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    for kill in [vec![1usize], vec![0, 2], vec![0, 1, 2, 3]] {
        let failures = FailureModel { kill_primaries: kill.clone(), ..Default::default() };
        let cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards: 4,
                replication: true,
                failures,
                shard_cache: 0,
                build: build.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        for sql in QUERIES {
            let (expect, _) = powerdrill::query(&store, sql).unwrap();
            let outcome = cluster.query(sql).unwrap();
            assert_eq!(outcome.result, expect, "kill={kill:?}: {sql}");
            assert_eq!(
                outcome.failovers, kill,
                "every killed primary must be recorded as a failover: {sql}"
            );
            assert_eq!(
                outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
                outcome.stats.rows_total,
                "failover must not corrupt the accounting: {sql}"
            );
        }
    }
}

#[test]
fn failure_without_replication_fails_the_query() {
    let cluster = cluster_with(
        FailureModel { kill_primaries: vec![2], ..Default::default() },
        false, // no replica to fall back to
        4,
    );
    let err = cluster.query(QUERIES[0]).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("shard 2") && message.contains("replication"),
        "the error names the failed shard: {message}"
    );
    // A query untouched by failures... does not exist: the kill switch is
    // per shard, so every query dies. Dropping the kill restores service.
    let healthy = cluster_with(FailureModel::default(), false, 4);
    assert!(healthy.query(QUERIES[0]).is_ok());
}

#[test]
fn seeded_failures_are_reproducible_and_correct() {
    let table = generate_logs(&LogsSpec::scaled(1_200));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    let run = || -> Vec<Vec<usize>> {
        let cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards: 4,
                replication: true,
                failures: FailureModel {
                    primary_fail_probability: 0.4,
                    seed: 0xdead,
                    ..Default::default()
                },
                shard_cache: 0,
                build: build.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let mut failover_log = Vec::new();
        for round in 0..5 {
            for sql in QUERIES {
                let (expect, _) = powerdrill::query(&store, sql).unwrap();
                let outcome = cluster.query(sql).unwrap();
                assert_eq!(outcome.result, expect, "round {round}: {sql}");
                failover_log.push(outcome.failovers);
            }
        }
        failover_log
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "equal seeds and query sequences must fail over identically");
    let total: usize = a.iter().map(Vec::len).sum();
    assert!(total > 0, "probability 0.4 over 80 subqueries must inject failures");
    assert!(total < 80, "...but not kill everything");
}

// ---------------------------------------------------------------------------
// Deadline-expiry failover across the real process split
// ---------------------------------------------------------------------------

fn rpc_transport(budget: std::time::Duration) -> powerdrill::dist::Transport {
    // Default transport settings beyond the budget: unix sockets,
    // compression on — so the failover machinery is exercised with
    // compressed frames in play.
    powerdrill::dist::Transport::Rpc(powerdrill::dist::RpcConfig {
        worker_bin: Some(std::path::PathBuf::from(env!("CARGO_BIN_EXE_pd-worker"))),
        budget,
        ..Default::default()
    })
}

/// A worker process that sleeps far past the hedge delay must produce the
/// **identical** `QueryOutcome` rows as a `FailureModel` kill of the same
/// shard — the hedged replica race answers from the replica process, which
/// holds the same partition. Unlike the old per-hop deadline (which waited
/// the *full* deadline before failing over), the hedge answers early: the
/// straggler's recorded latency stays well under the query budget.
#[test]
fn straggling_primary_is_hedged_identically_to_a_kill() {
    use std::time::Duration;

    let table = generate_logs(&LogsSpec::scaled(800));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    let slow_shard = 1usize;

    // Healthy primaries must comfortably beat this even on a loaded CI
    // runner (their real compute is milliseconds); the injected 20 s sleep
    // overshoots it by an order of magnitude either way.
    let budget = Duration::from_secs(2);

    // fanout 16: the driver parents the leaves; fanout 2: an intermediate
    // merge server does — the failover must work at both levels.
    for fanout in [16usize, 2] {
        let cluster_config = |failures: FailureModel| ClusterConfig {
            shards: 3,
            replication: true,
            failures,
            build: build.clone(),
            tree: powerdrill::dist::TreeShape { fanout },
            transport: rpc_transport(budget),
            ..Default::default()
        };

        // Baseline: the existing failure-injection path (simulated kill).
        let killed = Cluster::build(
            &table,
            &cluster_config(FailureModel {
                kill_primaries: vec![slow_shard],
                ..Default::default()
            }),
        )
        .unwrap();

        // The real thing: a healthy FailureModel, but shard 1's primary
        // *process* sleeps far past the hedge delay.
        let delayed = Cluster::build(&table, &cluster_config(FailureModel::default())).unwrap();
        delayed.inject_worker_delay(slow_shard, Duration::from_secs(20)).unwrap();

        for sql in &QUERIES[..2] {
            let (expect, _) = powerdrill::query(&store, sql).unwrap();
            let from_kill = killed.query(sql).unwrap();
            let from_hedge = delayed.query(sql).unwrap();
            assert_eq!(from_kill.result, expect, "fanout={fanout}: {sql}");
            assert_eq!(
                from_hedge.result, from_kill.result,
                "fanout={fanout}: hedged failover and kill must produce identical rows: {sql}"
            );
            assert_eq!(from_kill.failovers, vec![slow_shard], "fanout={fanout}: {sql}");
            assert!(
                from_hedge.failovers.contains(&slow_shard),
                "fanout={fanout}: the straggler's replica answer must be recorded as a \
                 failover: {sql} ({:?})",
                from_hedge.failovers
            );
            assert!(
                from_hedge.hedges.contains(&slow_shard),
                "fanout={fanout}: the straggler must be recorded as hedged: {sql} ({:?})",
                from_hedge.hedges
            );
            assert!(
                !from_kill.hedges.contains(&slow_shard),
                "fanout={fanout}: a known-dead primary is failed over directly, not raced: {sql}"
            );
            assert!(
                from_hedge.subquery_latencies[slow_shard] < budget,
                "fanout={fanout}: the hedge must answer early instead of waiting out the \
                 budget, got {:?}",
                from_hedge.subquery_latencies[slow_shard]
            );
        }
    }
}

/// Without a replica process, an exhausted budget is fatal — and says so.
#[test]
fn budget_expiry_without_replication_fails_the_query() {
    use std::time::Duration;

    let table = generate_logs(&LogsSpec::scaled(400));
    let cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 2,
            replication: false,
            build: build_options(),
            transport: rpc_transport(Duration::from_millis(500)),
            ..Default::default()
        },
    )
    .unwrap();
    cluster.query(QUERIES[0]).unwrap(); // healthy first
    cluster.inject_worker_delay(0, Duration::from_secs(20)).unwrap();
    let err = cluster.query(QUERIES[0]).unwrap_err().to_string();
    assert!(
        err.contains("shard 0") && err.contains("replication"),
        "the error names the expired shard: {err}"
    );
}

/// A merge server killed mid-query — not a leaf, the *inner* node folding
/// two leaf subtrees — must surface as a clean typed rpc error, never a
/// hang or a silent partial answer; and the respawned tree serves exact
/// rows with balanced accounting again.
#[test]
fn merge_server_kill_mid_query_is_a_clean_typed_error() {
    use powerdrill::common::RpcError;
    use powerdrill::dist::ChaosModel;
    use powerdrill::Error;
    use std::time::Duration;

    let table = generate_logs(&LogsSpec::scaled(600));
    let build = build_options();
    let store = DataStore::build(&table, &build).unwrap();
    // 3 shards at fanout 2: mixer m1_0 folds leaves 0 and 1, m1_1 owns
    // leaf 2 — killing m1_0 severs a whole subtree below the root.
    let mut cluster = Cluster::build(
        &table,
        &ClusterConfig {
            shards: 3,
            replication: true,
            build,
            tree: powerdrill::dist::TreeShape { fanout: 2 },
            transport: rpc_transport(Duration::from_secs(10)),
            ..Default::default()
        },
    )
    .unwrap();
    let sql = QUERIES[0];
    let (expect, _) = powerdrill::query(&store, sql).unwrap();
    assert_eq!(cluster.query(sql).unwrap().result, expect, "healthy tree first");

    cluster.set_chaos(ChaosModel { kill_nodes: vec!["m1_0".into()], ..Default::default() });
    let err = cluster.query(sql).unwrap_err();
    assert!(
        matches!(err, Error::Rpc(RpcError::PeerGone(_) | RpcError::ConnRefused(_))),
        "a merge server dying mid-query is a typed fault, not a hang or a string: {err}"
    );

    // Recovery: clear the chaos, respawn the tree, and the exact rows —
    // with balanced row accounting — come back.
    cluster.set_chaos(ChaosModel::default());
    cluster.rebuild(&table).unwrap();
    let outcome = cluster.query(sql).unwrap();
    assert_eq!(outcome.result, expect, "the respawned tree serves exact rows again");
    assert_eq!(
        outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
        outcome.stats.rows_total,
        "accounting balances after recovery"
    );
}

#[test]
fn failover_and_shard_cache_compose() {
    // A cached shard partial needs no server at all, so a killed primary
    // behind a cache hit is a non-event; a miss fails over as usual.
    let cluster =
        cluster_with(FailureModel { kill_primaries: vec![0], ..Default::default() }, true, 3);
    let sql = QUERIES[0];
    let cold = cluster.query(sql).unwrap();
    assert_eq!(cold.failovers, vec![0]);
    assert_eq!(cold.shard_cache_hits, 0);
    let warm = cluster.query(sql).unwrap();
    assert_eq!(warm.result, cold.result);
    assert_eq!(warm.shard_cache_hits, 3);
    assert!(warm.failovers.is_empty(), "cache hits never touch the (dead) primary");
}
