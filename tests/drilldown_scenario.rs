//! The introduction's promise, as an executable assertion: as a user
//! drills down ("all German searches … containing 'auto' … from one day"),
//! each added restriction lets the store skip a larger share of the data,
//! while results stay exactly right.

use powerdrill::data::{generate_searches, SearchesSpec};
use powerdrill::{BuildOptions, PartitionSpec, PowerDrill, Value};

fn pd() -> PowerDrill {
    let table = generate_searches(&SearchesSpec::scaled(30_000));
    PowerDrill::import(
        &table,
        &BuildOptions::reordered(PartitionSpec::new(&["country", "search_string"], 1_000)),
    )
    .unwrap()
}

#[test]
fn each_drill_down_step_skips_more() {
    let pd = pd();
    let steps = [
        "SELECT search_string, COUNT(*) c FROM s GROUP BY search_string ORDER BY c DESC LIMIT 5",
        "SELECT search_string, COUNT(*) c FROM s WHERE country = 'DE' GROUP BY search_string ORDER BY c DESC LIMIT 5",
        "SELECT search_string, COUNT(*) c FROM s WHERE country = 'DE' AND search_string IN ('auto', 'autoversicherung') GROUP BY search_string ORDER BY c DESC LIMIT 5",
    ];
    let mut last_skip = -1.0;
    for sql in steps {
        let (result, stats) = pd.sql(sql).unwrap();
        assert!(!result.rows.is_empty(), "{sql}");
        let skip = stats.skipped_fraction();
        assert!(
            skip >= last_skip,
            "skip fraction must not decrease while drilling down: {skip} after {last_skip} ({sql})"
        );
        last_skip = skip;
    }
    assert!(last_skip > 0.8, "the final drill-down should skip most data: {last_skip}");
}

#[test]
fn drilldown_results_are_consistent_across_steps() {
    let pd = pd();
    // The count of German "auto" searches must be identical whether asked
    // via a drilled-down grouped query or a direct global aggregate.
    let (grouped, _) = pd
        .sql("SELECT search_string, COUNT(*) c FROM s WHERE country = 'DE' GROUP BY search_string ORDER BY c DESC LIMIT 100")
        .unwrap();
    let auto_from_group: i64 = grouped
        .rows
        .iter()
        .filter(|r| r.get(0).as_str() == Some("auto"))
        .map(|r| r.get(1).as_int().unwrap())
        .sum();
    let (direct, stats) =
        pd.sql("SELECT COUNT(*) FROM s WHERE country = 'DE' AND search_string = 'auto'").unwrap();
    assert_eq!(direct.rows[0].0[0], Value::Int(auto_from_group));
    assert!(stats.skipped_fraction() > 0.5, "{}", stats.summary());
}

#[test]
fn language_correlation_shows_in_results() {
    let pd = pd();
    // 'auto' is a German term in this dataset; restricting to the US must
    // produce zero matches — via skipping alone, without scanning rows.
    let (result, stats) =
        pd.sql("SELECT COUNT(*) FROM s WHERE country = 'US' AND search_string = 'auto'").unwrap();
    assert_eq!(result.rows[0].0[0], Value::Int(0));
    assert_eq!(
        stats.rows_scanned,
        0,
        "country/search correlation lets the chunk dictionaries prove emptiness: {}",
        stats.summary()
    );
}

#[test]
fn contains_filter_works_but_cannot_skip() {
    let pd = pd();
    // contains() is outside the skipping operator set: correct results,
    // but every chunk must be scanned (modulo other conjuncts).
    let (with_country, s1) = pd
        .sql("SELECT COUNT(*) FROM s WHERE country = 'DE' AND contains(search_string, 'auto')")
        .unwrap();
    let (without, s2) =
        pd.sql("SELECT COUNT(*) FROM s WHERE contains(search_string, 'auto')").unwrap();
    let a = with_country.rows[0].0[0].as_int().unwrap();
    let b = without.rows[0].0[0].as_int().unwrap();
    assert!(a > 0 && b >= a);
    assert!(s1.rows_skipped > 0, "the country conjunct still skips: {}", s1.summary());
    assert_eq!(s2.rows_skipped, 0, "contains alone cannot skip: {}", s2.summary());
}
