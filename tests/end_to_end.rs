//! End-to-end pipeline test spanning every crate: generate → serialize to
//! both row formats → read back → import into the column-store → compare
//! all five engines (store, CSV, record-io, Dremel-like, distributed
//! cluster) on the same queries.

use powerdrill::baselines::{Backend, CsvBackend, DremelBackend, IoModel, RecordIoBackend};
use powerdrill::data::csv::{read_csv, write_csv};
use powerdrill::data::recordio::{read_recordio, write_recordio};
use powerdrill::data::{generate_logs, LogsSpec};
use powerdrill::dist::{Cluster, ClusterConfig};
use powerdrill::{BuildOptions, PowerDrill, QueryResult, Value};
use std::io::BufReader;

fn approx_eq(a: &QueryResult, b: &QueryResult) -> bool {
    a.columns == b.columns
        && a.rows.len() == b.rows.len()
        && a.rows.iter().zip(&b.rows).all(|(ra, rb)| {
            ra.0.iter().zip(&rb.0).all(|(x, y)| match (x, y) {
                (Value::Float(p), Value::Float(q)) => {
                    (p - q).abs() <= 1e-6 * (1.0 + p.abs().max(q.abs()))
                }
                _ => x == y,
            })
        })
}

#[test]
fn formats_round_trip_and_all_engines_agree() {
    let table = generate_logs(&LogsSpec::scaled(1_500));

    // Formats round-trip.
    let mut csv_bytes = Vec::new();
    write_csv(&table, &mut csv_bytes).unwrap();
    let from_csv = read_csv(&mut BufReader::new(&csv_bytes[..]), table.schema()).unwrap();
    assert_eq!(from_csv, table, "CSV round trip");
    let rio_bytes = write_recordio(&table);
    let from_rio = read_recordio(&rio_bytes).unwrap();
    assert_eq!(from_rio, table, "record-io round trip");

    // Engines.
    let mut options = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut options.partition {
        spec.max_chunk_rows = 200;
    }
    let pd = PowerDrill::import(&table, &options).unwrap();
    let csv = CsvBackend::new(&table, IoModel::default()).unwrap();
    let rio = RecordIoBackend::new(&table, IoModel::default()).unwrap();
    let dremel = DremelBackend::new(&table, IoModel::default()).unwrap();
    let cluster =
        Cluster::build(&table, &ClusterConfig { shards: 4, build: options, ..Default::default() })
            .unwrap();

    for sql in [
        "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
        "SELECT date(timestamp) as d, COUNT(*), SUM(latency) FROM data GROUP BY d ORDER BY d ASC LIMIT 10",
        "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10",
        "SELECT country, COUNT(*) c FROM data WHERE country IN ('US','DE') AND latency > 200.0 GROUP BY country ORDER BY c DESC",
        "SELECT country, MIN(latency), MAX(latency), AVG(latency) FROM data GROUP BY country ORDER BY country ASC LIMIT 6",
        "SELECT user, COUNT(*) c FROM data WHERE date(timestamp) IN ('2011-10-05','2011-11-05') GROUP BY user ORDER BY c DESC LIMIT 5",
    ] {
        let (store_result, _) = pd.sql(sql).unwrap();
        let csv_result = csv.execute(sql).unwrap().result;
        let rio_result = rio.execute(sql).unwrap().result;
        let dremel_result = dremel.execute(sql).unwrap().result;
        let cluster_result = cluster.query(sql).unwrap().result;
        assert!(approx_eq(&store_result, &csv_result), "store vs CSV: {sql}");
        assert!(approx_eq(&store_result, &rio_result), "store vs rec-io: {sql}");
        assert!(approx_eq(&store_result, &dremel_result), "store vs Dremel: {sql}");
        assert!(approx_eq(&store_result, &cluster_result), "store vs cluster: {sql}");
    }
}

#[test]
fn store_skips_what_baselines_scan() {
    let table = generate_logs(&LogsSpec::scaled(2_000));
    let mut options = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut options.partition {
        spec.max_chunk_rows = 100;
    }
    let pd = PowerDrill::import(&table, &options).unwrap();
    let sql = "SELECT table_name, COUNT(*) c FROM data WHERE country = 'SG' GROUP BY table_name ORDER BY c DESC LIMIT 5";
    let (_, stats) = pd.sql(sql).unwrap();
    assert!(
        stats.skipped_fraction() > 0.7,
        "a rare-country restriction should skip most rows: {}",
        stats.summary()
    );
    // The CSV baseline streams everything, no matter the filter.
    let csv = CsvBackend::new(&table, IoModel::default()).unwrap();
    assert_eq!(csv.storage_bytes(sql).unwrap(), csv.file_bytes());
}

#[test]
fn memory_ordering_matches_table1() {
    // Table 1's memory column ordering: row formats ≫ columnar formats,
    // and the columnar formats only pay for touched columns.
    let table = generate_logs(&LogsSpec::scaled(2_000));
    let csv = CsvBackend::new(&table, IoModel::default()).unwrap();
    let rio = RecordIoBackend::new(&table, IoModel::default()).unwrap();
    let dremel = DremelBackend::new(&table, IoModel::default()).unwrap();
    let pd = PowerDrill::import(&table, &BuildOptions::basic()).unwrap();

    let q1 = "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10";
    let store_q1 = pd.memory_for(q1).unwrap().total();
    let dremel_q1 = dremel.storage_bytes(q1).unwrap();
    let csv_q1 = csv.storage_bytes(q1).unwrap();
    let rio_q1 = rio.storage_bytes(q1).unwrap();
    assert!(store_q1 < csv_q1 / 10, "store {store_q1} vs csv {csv_q1}");
    assert!(dremel_q1 < csv_q1 / 10, "dremel {dremel_q1} vs csv {csv_q1}");
    assert!(rio_q1 < csv_q1, "rec-io {rio_q1} vs csv {csv_q1}");
}
