//! Randomized equivalence tests: for seeded-random tables and queries from
//! the supported subset, the column-store (all build variants) must return
//! exactly what the row-at-a-time baseline executor returns — and parallel
//! execution must return *bit-identical* results to sequential execution
//! at every thread count.

use powerdrill::baselines::{Backend, CsvBackend, IoModel};
use powerdrill::common::rng::Rng;
use powerdrill::core::execute;
use powerdrill::sql::{analyze, parse_query};
use powerdrill::{
    BuildOptions, DataStore, DataType, ExecContext, PartitionSpec, PowerDrill, QueryResult, Row,
    Schema, Table, Value,
};

/// A small random table: k (low cardinality string), g (medium cardinality
/// string), n (int), x (float).
fn random_table(rng: &mut Rng) -> Table {
    let rows = rng.range_usize(1, 120);
    let schema = Schema::of(&[
        ("k", DataType::Str),
        ("g", DataType::Str),
        ("n", DataType::Int),
        ("x", DataType::Float),
    ]);
    let mut table = Table::new(schema);
    for _ in 0..rows {
        table
            .push_row(Row(vec![
                Value::from(["red", "green", "blue", "grey"][rng.range_usize(0, 4)]),
                Value::from(format!("g{:02}", rng.range_usize(0, 12))),
                Value::Int(rng.range_i64_inclusive(-50, 49)),
                Value::Float(rng.range_i64_inclusive(-4, 3) as f64 * 0.5),
            ]))
            .unwrap();
    }
    table
}

/// A random query over that table's shape.
fn random_query(rng: &mut Rng) -> String {
    let keys = *rng.pick(&["k", "g", "k, g"]);
    let aggs = *rng.pick(&[
        "COUNT(*) as c",
        "COUNT(*) as c, SUM(n) as s",
        "SUM(x) as s, MIN(n) as mn, MAX(n) as mx",
        "AVG(x) as a, COUNT(*) as c",
    ]);
    let filter = match rng.range_usize(0, 9) {
        0 => String::new(),
        1 => " WHERE k = 'red'".to_owned(),
        2 => " WHERE k IN ('red', 'blue')".to_owned(),
        3 => " WHERE k NOT IN ('green')".to_owned(),
        4 => " WHERE n > 0".to_owned(),
        5 => " WHERE k = 'red' AND n > 0".to_owned(),
        6 => " WHERE k = 'red' OR g = 'g03'".to_owned(),
        7 => " WHERE NOT (k = 'red' AND g = 'g01')".to_owned(),
        _ => {
            let g = rng.range_usize(0, 12);
            format!(" WHERE g IN ('g{g:02}', 'g{:02}')", (g + 3) % 12)
        }
    };
    let tail = *rng.pick(&["", " ORDER BY c DESC LIMIT 3", " HAVING c > 2 ORDER BY c DESC"]);
    // HAVING/ORDER BY c require c in the select list; fall back when the
    // aggregate list lacks it.
    let tail =
        if tail.contains('c') && !aggs.contains(" c") && !aggs.contains("c,") { "" } else { tail };
    format!("SELECT {keys}, {aggs} FROM data{filter} GROUP BY {keys}{tail}")
}

fn approx_eq(a: &QueryResult, b: &QueryResult) -> bool {
    a.columns == b.columns
        && a.rows.len() == b.rows.len()
        && a.rows.iter().zip(&b.rows).all(|(ra, rb)| {
            ra.0.iter().zip(&rb.0).all(|(x, y)| match (x, y) {
                (Value::Float(p), Value::Float(q)) => {
                    (p - q).abs() <= 1e-9 * (1.0 + p.abs().max(q.abs()))
                }
                _ => x == y,
            })
        })
}

#[test]
fn store_matches_baseline_on_random_queries() {
    let mut rng = Rng::seed_from_u64(0x5eed_0001);
    for case in 0..48 {
        let table = random_table(&mut rng);
        let sql = random_query(&mut rng);
        let baseline = CsvBackend::new(&table, IoModel::default()).unwrap();
        let expected = baseline.execute(&sql).unwrap().result;

        for options in [
            BuildOptions::basic(),
            BuildOptions::optcols(PartitionSpec::new(&["k", "g"], 16)),
            BuildOptions::reordered(PartitionSpec::new(&["k", "g"], 16)),
        ] {
            let pd = PowerDrill::import(&table, &options).unwrap();
            let (got, stats) = pd.sql(&sql).unwrap();
            assert!(
                approx_eq(&got, &expected),
                "case {case} options {options:?}\nsql {sql}\ngot  {:?}\nwant {:?}",
                got.rows,
                expected.rows
            );
            assert_eq!(
                stats.rows_skipped + stats.rows_cached + stats.rows_scanned,
                stats.rows_total,
                "row accounting must balance: {sql}"
            );
            // Second execution (warm result cache) must be identical.
            let (again, _) = pd.sql(&sql).unwrap();
            assert!(approx_eq(&again, &expected), "cache changed the result for {sql}");
        }
    }
}

#[test]
fn skipping_never_changes_results() {
    let mut rng = Rng::seed_from_u64(0x5eed_0002);
    for _ in 0..24 {
        let table = random_table(&mut rng);
        let g = rng.range_usize(0, 12);
        // A restriction targeted at one g-value: heavily skippable under
        // partitioning by (g), and the result must match Basic (no chunks).
        let sql = format!(
            "SELECT k, COUNT(*) as c FROM data WHERE g = 'g{g:02}' GROUP BY k ORDER BY c DESC"
        );
        let plain = PowerDrill::import(&table, &BuildOptions::basic()).unwrap();
        let partitioned =
            PowerDrill::import(&table, &BuildOptions::reordered(PartitionSpec::new(&["g"], 8)))
                .unwrap();
        let (a, _) = plain.sql(&sql).unwrap();
        let (b, _) = partitioned.sql(&sql).unwrap();
        assert!(approx_eq(&a, &b), "sql {sql}\nbasic {:?}\npartitioned {:?}", a.rows, b.rows);
    }
}

// ---------------------------------------------------------------------------
// Parallel-vs-sequential equivalence matrix
// ---------------------------------------------------------------------------

/// The paper's Table 1 queries plus drill-down variants exercising filters,
/// skipping, multi-key grouping and every aggregate kind.
const MATRIX_QUERIES: [&str; 8] = [
    // Table 1, Query 1–3.
    "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data GROUP BY date ORDER BY date ASC LIMIT 10",
    "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10",
    // Restrictions: skipping + partial chunks at every thread count.
    "SELECT country, COUNT(*) c FROM data WHERE country IN ('US','DE') GROUP BY country ORDER BY c DESC",
    "SELECT table_name, COUNT(*) c FROM data WHERE country = 'SG' GROUP BY table_name ORDER BY c DESC LIMIT 5",
    "SELECT country, COUNT(*) c FROM data WHERE latency > 400.0 GROUP BY country ORDER BY c DESC LIMIT 5",
    // Float aggregates are the order-sensitive ones: the deterministic
    // chunk-order fold must make them bit-identical, not just close.
    "SELECT country, SUM(latency) s, AVG(latency) a FROM data GROUP BY country ORDER BY country ASC",
    "SELECT country, user, COUNT(*) c, MIN(latency), MAX(latency) FROM data GROUP BY country, user ORDER BY c DESC LIMIT 20",
];

#[test]
fn parallel_execution_is_bit_identical_to_sequential() {
    use powerdrill::data::{generate_logs, LogsSpec};

    let table = generate_logs(&LogsSpec::scaled(4_000));
    let mut options = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut options.partition {
        spec.max_chunk_rows = 150; // plenty of chunks to schedule
    }
    let store = DataStore::build(&table, &options).unwrap();

    for sql in MATRIX_QUERIES {
        let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();
        let sequential = ExecContext { threads: 1, ..Default::default() };
        let (want, want_stats) = execute(&store, &analyzed, &sequential).unwrap();
        for threads in [2usize, 8] {
            let ctx = ExecContext { threads, ..Default::default() };
            let (got, stats) = execute(&store, &analyzed, &ctx).unwrap();
            // Exact equality — not approximate: the chunk-order fold makes
            // float summation independent of the thread count.
            assert_eq!(got, want, "threads={threads}: {sql}");
            assert_eq!(
                stats.chunks_skipped, want_stats.chunks_skipped,
                "skip decisions must not depend on threads: {sql}"
            );
            assert_eq!(stats.chunks_scanned, want_stats.chunks_scanned, "{sql}");
            assert_eq!(stats.rows_scanned, want_stats.rows_scanned, "{sql}");
        }
    }
}

#[test]
fn parallel_execution_matches_across_build_variants() {
    // The same matrix on an unpartitioned store (single chunk: parallelism
    // degenerates to one task) and on random tables.
    use powerdrill::data::{generate_logs, LogsSpec};
    let table = generate_logs(&LogsSpec::scaled(1_500));
    let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
    for sql in &MATRIX_QUERIES[..4] {
        let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();
        let (want, _) =
            execute(&store, &analyzed, &ExecContext { threads: 1, ..Default::default() }).unwrap();
        for threads in [2usize, 8] {
            let ctx = ExecContext { threads, ..Default::default() };
            let (got, _) = execute(&store, &analyzed, &ctx).unwrap();
            assert_eq!(got, want, "threads={threads}: {sql}");
        }
    }

    let mut rng = Rng::seed_from_u64(0x5eed_0003);
    for _ in 0..16 {
        let table = random_table(&mut rng);
        let sql = random_query(&mut rng);
        let store =
            DataStore::build(&table, &BuildOptions::reordered(PartitionSpec::new(&["k", "g"], 8)))
                .unwrap();
        let analyzed = analyze(&parse_query(&sql).unwrap()).unwrap();
        let (want, _) =
            execute(&store, &analyzed, &ExecContext { threads: 1, ..Default::default() }).unwrap();
        for threads in [2usize, 8] {
            let ctx = ExecContext { threads, ..Default::default() };
            let (got, _) = execute(&store, &analyzed, &ctx).unwrap();
            assert_eq!(got, want, "threads={threads}: {sql}");
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel fast-path axis
// ---------------------------------------------------------------------------

/// The compressed-domain kernel axis: run-aware aggregation over `Elements`
/// runs and the dense-float double-double fast path are pure speed — every
/// combination of [`KernelConfig`] flags, at every thread count, must be
/// **bit-identical** (`assert_eq!`, floats included) to the fully
/// materializing kernels. Global aggregates (no `GROUP BY`) exercise the
/// whole-chunk run path; single-key dense group-bys exercise the key-run
/// and double-double paths; masks and multi-key queries must fall back
/// without changing a bit.
#[test]
fn kernel_fast_paths_are_bit_identical_to_materializing() {
    use powerdrill::data::{generate_logs, LogsSpec};
    use powerdrill::KernelConfig;

    let queries: Vec<&str> = MATRIX_QUERIES
        .iter()
        .copied()
        .chain([
            // Global aggregates: the group-of-every-row shape.
            "SELECT COUNT(*) c, SUM(latency) s, AVG(latency) a FROM data",
            "SELECT SUM(latency) s FROM data WHERE country = 'US'",
            "SELECT COUNT(*) c, MIN(latency) mn, MAX(latency) mx FROM data",
        ])
        .collect();

    // Production build (reordered: long runs) and basic build (one chunk,
    // unsorted codes) — the fast paths must win or fall back correctly on
    // both.
    let table = generate_logs(&LogsSpec::scaled(3_000));
    let mut production = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut production.partition {
        spec.max_chunk_rows = 150;
    }
    for options in [production, BuildOptions::basic()] {
        let store = DataStore::build(&table, &options).unwrap();
        for sql in &queries {
            let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();
            let reference = ExecContext {
                threads: 1,
                kernels: KernelConfig::materializing(),
                ..Default::default()
            };
            let (want, want_stats) = execute(&store, &analyzed, &reference).unwrap();
            for run_aware in [false, true] {
                for dense_float in [false, true] {
                    for threads in [1usize, 8] {
                        let ctx = ExecContext {
                            threads,
                            kernels: KernelConfig { run_aware, dense_float },
                            ..Default::default()
                        };
                        let (got, stats) = execute(&store, &analyzed, &ctx).unwrap();
                        assert_eq!(
                            got, want,
                            "run_aware={run_aware} dense_float={dense_float} \
                             threads={threads}: {sql}"
                        );
                        assert_eq!(
                            stats.rows_scanned, want_stats.rows_scanned,
                            "kernels must not change what is scanned: {sql}"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Distributed equivalence matrix
// ---------------------------------------------------------------------------

/// Concurrent shard fan-out must be **bit-identical** to the single-store
/// engine for every matrix query, at every tested combination of
/// {shard count} × {threads} × {shard cache on/off} × {replication on/off}.
///
/// This is a strong claim: different shard counts re-partition, reorder
/// and re-chunk the rows, so even float `SUM`/`AVG` must not depend on
/// summation order — which holds because aggregation states accumulate
/// into exact superaccumulators (`pd_common::FloatSum`). `assert_eq!`,
/// never approximate comparison.
#[test]
fn distributed_matrix_is_bit_identical_to_single_store() {
    use powerdrill::data::{generate_logs, LogsSpec};
    use powerdrill::dist::{Cluster, ClusterConfig};

    let table = generate_logs(&LogsSpec::scaled(1_500));
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    let store = DataStore::build(&table, &build).unwrap();
    let sequential = ExecContext { threads: 1, ..Default::default() };
    let expected: Vec<QueryResult> = MATRIX_QUERIES
        .iter()
        .map(|sql| {
            let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();
            execute(&store, &analyzed, &sequential).unwrap().0
        })
        .collect();

    for shards in [1usize, 2, 4, 8] {
        for threads in [1usize, 2, 4] {
            for shard_cache in [0usize, 128] {
                for replication in [false, true] {
                    let config = ClusterConfig {
                        shards,
                        replication,
                        threads,
                        shard_cache,
                        build: build.clone(),
                        ..Default::default()
                    };
                    let cluster = Cluster::build(&table, &config).unwrap();
                    let label = format!(
                        "shards={shards} threads={threads} cache={shard_cache} \
                         replication={replication}"
                    );
                    // Two passes: the second exercises warm cache paths
                    // (shard-level and chunk-level) and must change
                    // nothing but the scan statistics.
                    for pass in 0..2 {
                        for (sql, want) in MATRIX_QUERIES.iter().zip(&expected) {
                            let outcome = cluster.query(sql).unwrap();
                            assert_eq!(outcome.result, *want, "{label} pass={pass}: {sql}");
                            assert_eq!(
                                outcome.stats.rows_skipped
                                    + outcome.stats.rows_cached
                                    + outcome.stats.rows_scanned,
                                outcome.stats.rows_total,
                                "row accounting must balance: {label}: {sql}"
                            );
                            assert_eq!(outcome.subquery_latencies.len(), cluster.shard_count());
                            if shard_cache > 0 && pass == 1 {
                                assert_eq!(
                                    outcome.shard_cache_hits,
                                    cluster.shard_count(),
                                    "warm pass must reuse every shard partial: {label}: {sql}"
                                );
                            }
                            if shard_cache == 0 {
                                assert_eq!(outcome.shard_cache_hits, 0, "{label}");
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The transport axis: the same bit-identity must hold when the
/// computation tree is **split across OS processes** — spawned
/// `pd-dist-worker` leaves (and, at fanout 2, real intermediate merge
/// servers) exchanging serialized partials over the RPC boundary, over
/// Unix sockets *and* loopback TCP, with frame compression off and on.
/// Matrix: {shards 1/2/4} × {tree depth ≤1 / 2 (fanout 16 / 2)} ×
/// {in-process, unix, tcp, tcp+compressed} × {result caching off / on}.
/// Each combination runs a cold and a warm pass (the warm pass serves
/// from the workers' own result caches when caching is on — observable
/// in `worker_cache_hits`, with *nothing* scanned anywhere), and at 4
/// shards a **rebuild-then-requery** pass proves the epoch invalidation:
/// after `Cluster::rebuild` with different data, every answer is the new
/// data's, cold then warm again.
///
/// Exact `assert_eq!`, floats included: group keys, float sums
/// (superaccumulator limbs) and sketches cross the wire bit-identically
/// (compression round-trips losslessly by construction), every merge
/// level folds associatively, and cached partials are the very states a
/// recomputation would produce — so neither the process split, the socket
/// shape, the wire codec nor any cache may change *anything* about any
/// result row.
#[test]
fn transport_axis_is_bit_identical_across_process_split() {
    use powerdrill::data::{generate_logs, LogsSpec};
    use powerdrill::dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape, WorkerAddr};
    use std::time::Duration;

    let table = generate_logs(&LogsSpec::scaled(1_200));
    let rebuilt_table = generate_logs(&LogsSpec::scaled(1_000));
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    let expect_for = |table: &powerdrill::Table, queries: &[&str]| -> Vec<QueryResult> {
        let store = DataStore::build(table, &build).unwrap();
        let sequential = ExecContext { threads: 1, ..Default::default() };
        queries
            .iter()
            .map(|sql| {
                let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();
                execute(&store, &analyzed, &sequential).unwrap().0
            })
            .collect()
    };
    let expected = expect_for(&table, &MATRIX_QUERIES);
    let rebuilt_expected = expect_for(&rebuilt_table, &MATRIX_QUERIES[..3]);

    let worker_bin = std::path::PathBuf::from(env!("CARGO_BIN_EXE_pd-worker"));
    let rpc = |addr: WorkerAddr, compress: bool| {
        Transport::Rpc(RpcConfig {
            worker_bin: Some(worker_bin.clone()),
            budget: Duration::from_secs(30),
            addr,
            compress,
        })
    };
    for shards in [1usize, 2, 4] {
        // fanout 16 keeps every leaf directly under the root (depth ≤ 1);
        // fanout 2 forces an intermediate merge-server level at 4 shards
        // (depth 2: leaves → mixers → root).
        for fanout in [16usize, 2] {
            for cache in [0usize, 128] {
                let transports = [
                    ("in-process", Transport::InProcess),
                    ("unix", rpc(WorkerAddr::Unix, false)),
                    ("tcp", rpc(WorkerAddr::loopback(), false)),
                    ("tcp+z", rpc(WorkerAddr::loopback(), true)),
                ];
                for (transport_name, transport) in transports {
                    let label = format!(
                        "shards={shards} fanout={fanout} cache={cache} \
                         transport={transport_name}"
                    );
                    let in_process = transport == Transport::InProcess;
                    let config = ClusterConfig {
                        shards,
                        replication: false,
                        threads: 0,
                        shard_cache: cache,
                        tree: TreeShape { fanout },
                        build: build.clone(),
                        transport,
                        ..Default::default()
                    };
                    let mut cluster = Cluster::build(&table, &config).unwrap();
                    assert_eq!(cluster.shard_count(), shards, "{label}");
                    for pass in 0..2 {
                        for (sql, want) in MATRIX_QUERIES.iter().zip(&expected) {
                            let outcome = cluster.query(sql).unwrap();
                            assert_eq!(outcome.result, *want, "{label} pass={pass}: {sql}");
                            assert_eq!(
                                outcome.stats.rows_skipped
                                    + outcome.stats.rows_cached
                                    + outcome.stats.rows_scanned,
                                outcome.stats.rows_total,
                                "row accounting must balance: {label}: {sql}"
                            );
                            assert_eq!(outcome.subquery_latencies.len(), shards, "{label}");
                            assert_eq!(outcome.queue_delays.len(), shards, "{label}");
                            assert!(outcome.failovers.is_empty(), "{label}");
                            if cache == 0 {
                                assert_eq!(outcome.shard_cache_hits, 0, "{label}");
                                assert_eq!(outcome.worker_cache_hits(), 0, "{label}");
                            } else if pass == 1 {
                                // Warm + caching: every non-pruned subtree
                                // answers from a cache — in-process at the
                                // root, over RPC inside the workers — so
                                // nothing is scanned anywhere.
                                assert_eq!(
                                    outcome.stats.rows_scanned, 0,
                                    "{label} warm: no scan may survive a cached pass: {sql}"
                                );
                                if in_process {
                                    assert_eq!(outcome.worker_cache_hits(), 0, "{label}");
                                } else {
                                    assert_eq!(outcome.shard_cache_hits, 0, "{label}");
                                }
                            }
                        }
                        if cache > 0 && pass == 1 {
                            // The unrestricted first query prunes nothing,
                            // so its warm hits are exactly the cache layer
                            // closest to the root: every shard at the
                            // in-process root, every frontier node over RPC.
                            let outcome = cluster.query(MATRIX_QUERIES[0]).unwrap();
                            let frontier = frontier_width(shards, fanout);
                            if in_process {
                                assert_eq!(outcome.shard_cache_hits, shards, "{label}");
                            } else {
                                assert_eq!(outcome.worker_cache_hits(), frontier, "{label}");
                            }
                        }
                    }
                    if shards == 4 {
                        // Rebuild-then-requery: the epoch bump (and, over
                        // RPC, the respawned tree) must retire every cached
                        // partial — the answers are the new data's, cold
                        // and then warm again.
                        cluster.rebuild(&rebuilt_table).unwrap();
                        for pass in 0..2 {
                            for (sql, want) in MATRIX_QUERIES[..3].iter().zip(&rebuilt_expected) {
                                let outcome = cluster.query(sql).unwrap();
                                assert_eq!(
                                    outcome.result, *want,
                                    "{label} rebuild pass={pass}: {sql}"
                                );
                                if cache > 0 && pass == 1 {
                                    assert_eq!(
                                        outcome.stats.rows_scanned, 0,
                                        "{label} rebuild warm: {sql}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The pruning axis: chunk-granular pruning (per-chunk zone maps, Bloom
/// filters and virtual-field partial evaluation shipped in the Load acks)
/// is pure work-avoidance — switching it off may only move scans around,
/// never change a row. Every matrix query runs cold and warm, with the
/// layered pruner on and off, over the in-process tree and a real
/// process-split tree (unix sockets and compressed TCP), and every result
/// must be **bit-identical** (floats included) to the sequential
/// single-store answer. The matrix includes `date(timestamp)` drill-downs
/// (the §5.1 virtual-field path) and gap restrictions the shard envelope
/// cannot refute, so both the prune-the-edge and the seed-the-leaf paths
/// are exercised against the reference.
#[test]
fn chunk_pruning_axis_is_bit_identical_on_and_off() {
    use powerdrill::data::{generate_logs, LogsSpec};
    use powerdrill::dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape, WorkerAddr};
    use std::time::Duration;

    let table = generate_logs(&LogsSpec::scaled(1_200));
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = 150;
    }
    let store = DataStore::build(&table, &build).unwrap();
    let sequential = ExecContext { threads: 1, ..Default::default() };
    // The shared matrix plus restrictions built to *prune*: an equality on
    // a date() virtual field and a selective country drill-down.
    let queries: Vec<&str> = MATRIX_QUERIES
        .iter()
        .copied()
        .chain([
            "SELECT country, COUNT(*) c FROM data \
             WHERE date(timestamp) IN ('1970-01-01') GROUP BY country ORDER BY c DESC",
            "SELECT table_name, COUNT(*) c, SUM(latency) s FROM data \
             WHERE country IN ('SG') AND latency > 100.0 GROUP BY table_name ORDER BY c DESC LIMIT 5",
        ])
        .collect();
    let expected: Vec<QueryResult> = queries
        .iter()
        .map(|sql| {
            let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();
            execute(&store, &analyzed, &sequential).unwrap().0
        })
        .collect();

    let worker_bin = std::path::PathBuf::from(env!("CARGO_BIN_EXE_pd-worker"));
    let rpc = |addr: WorkerAddr, compress: bool| {
        Transport::Rpc(RpcConfig {
            worker_bin: Some(worker_bin.clone()),
            budget: Duration::from_secs(30),
            addr,
            compress,
        })
    };
    for chunk_pruning in [true, false] {
        let transports = [
            ("in-process", Transport::InProcess),
            ("unix", rpc(WorkerAddr::Unix, false)),
            ("tcp+z", rpc(WorkerAddr::loopback(), true)),
        ];
        for (transport_name, transport) in transports {
            let label = format!("pruning={chunk_pruning} transport={transport_name}");
            let cluster = Cluster::build(
                &table,
                &ClusterConfig {
                    shards: 3,
                    replication: false,
                    shard_cache: 64,
                    tree: TreeShape { fanout: 2 },
                    build: build.clone(),
                    transport,
                    chunk_pruning,
                    ..Default::default()
                },
            )
            .unwrap();
            for pass in 0..2 {
                for (sql, want) in queries.iter().zip(&expected) {
                    let outcome = cluster.query(sql).unwrap();
                    assert_eq!(outcome.result, *want, "{label} pass={pass}: {sql}");
                    assert_eq!(
                        outcome.stats.rows_skipped
                            + outcome.stats.rows_cached
                            + outcome.stats.rows_scanned,
                        outcome.stats.rows_total,
                        "row accounting must balance: {label} pass={pass}: {sql}"
                    );
                    assert_eq!(
                        outcome.stats.chunks_skipped
                            + outcome.stats.chunks_cached
                            + outcome.stats.chunks_scanned,
                        outcome.stats.chunks_total,
                        "chunk accounting must balance: {label} pass={pass}: {sql}"
                    );
                    if !chunk_pruning {
                        assert_eq!(
                            outcome.stats.chunks_pruned_remote, 0,
                            "{label}: the counter is the layered pruner's alone: {sql}"
                        );
                    }
                }
            }
        }
    }
}

/// Width of the process tree's frontier (the level the driver root
/// queries): leaves while they fit the fanout, else the top merge level.
fn frontier_width(shards: usize, fanout: usize) -> usize {
    let fanout = fanout.max(2);
    let mut width = shards.max(1);
    while width > fanout {
        width = width.div_ceil(fanout);
    }
    width
}

/// The same bit-identity, via the seeded random query generator: sharded
/// execution tracks the row-at-a-time baseline exactly where the
/// single-store engine does.
#[test]
fn distributed_random_queries_match_single_store_bitwise() {
    use powerdrill::dist::{Cluster, ClusterConfig};

    let mut rng = Rng::seed_from_u64(0x5eed_0004);
    for case in 0..12 {
        let table = random_table(&mut rng);
        let sql = random_query(&mut rng);
        let store =
            DataStore::build(&table, &BuildOptions::reordered(PartitionSpec::new(&["k", "g"], 8)))
                .unwrap();
        let analyzed = analyze(&parse_query(&sql).unwrap()).unwrap();
        let (want, _) =
            execute(&store, &analyzed, &ExecContext { threads: 1, ..Default::default() }).unwrap();
        let shards = [1, 3, 5][case % 3];
        let cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards,
                build: BuildOptions::reordered(PartitionSpec::new(&["k", "g"], 8)),
                ..Default::default()
            },
        )
        .unwrap();
        for pass in 0..2 {
            let outcome = cluster.query(&sql).unwrap();
            assert_eq!(outcome.result, want, "case {case} shards={shards} pass={pass}: {sql}");
        }
    }
}
