//! Property test: for random tables and random queries from the supported
//! subset, the column-store (all build variants) must return exactly what
//! the row-at-a-time baseline executor returns.

use powerdrill::baselines::{Backend, CsvBackend, IoModel};
use powerdrill::{BuildOptions, DataType, PartitionSpec, PowerDrill, QueryResult, Row, Schema, Table, Value};
use proptest::prelude::*;

/// A small random table: k (low cardinality string), g (medium cardinality
/// string), n (int), x (float).
fn arb_table() -> impl Strategy<Value = Table> {
    let row = (
        0usize..4,   // k index
        0usize..12,  // g index
        -50i64..50,  // n
        (-4i32..4).prop_map(|v| v as f64 * 0.5),
    );
    proptest::collection::vec(row, 1..120).prop_map(|rows| {
        let schema = Schema::of(&[
            ("k", DataType::Str),
            ("g", DataType::Str),
            ("n", DataType::Int),
            ("x", DataType::Float),
        ]);
        let mut table = Table::new(schema);
        for (k, g, n, x) in rows {
            table
                .push_row(Row(vec![
                    Value::from(["red", "green", "blue", "grey"][k]),
                    Value::from(format!("g{g:02}")),
                    Value::Int(n),
                    Value::Float(x),
                ]))
                .unwrap();
        }
        table
    })
}

/// A random query over that table's shape.
fn arb_query() -> impl Strategy<Value = String> {
    let keys = prop_oneof![Just("k"), Just("g"), Just("k, g")];
    let aggs = prop_oneof![
        Just("COUNT(*) as c"),
        Just("COUNT(*) as c, SUM(n) as s"),
        Just("SUM(x) as s, MIN(n) as mn, MAX(n) as mx"),
        Just("AVG(x) as a, COUNT(*) as c"),
    ];
    let filter = prop_oneof![
        Just(String::new()),
        Just(" WHERE k = 'red'".to_owned()),
        Just(" WHERE k IN ('red', 'blue')".to_owned()),
        Just(" WHERE k NOT IN ('green')".to_owned()),
        Just(" WHERE n > 0".to_owned()),
        Just(" WHERE k = 'red' AND n > 0".to_owned()),
        Just(" WHERE k = 'red' OR g = 'g03'".to_owned()),
        Just(" WHERE NOT (k = 'red' AND g = 'g01')".to_owned()),
        (0usize..12).prop_map(|g| format!(" WHERE g IN ('g{g:02}', 'g{:02}')", (g + 3) % 12)),
    ];
    let tail = prop_oneof![
        Just(""),
        Just(" ORDER BY c DESC LIMIT 3"),
        Just(" HAVING c > 2 ORDER BY c DESC"),
    ];
    (keys, aggs, filter, tail).prop_map(|(k, a, f, t)| {
        // HAVING/ORDER BY c require c in the select list; fall back when the
        // aggregate list lacks it.
        let tail = if t.contains('c') && !a.contains(" c") && !a.contains("c,") {
            ""
        } else {
            t
        };
        format!("SELECT {k}, {a} FROM data{f} GROUP BY {k}{tail}")
    })
}

fn approx_eq(a: &QueryResult, b: &QueryResult) -> bool {
    a.columns == b.columns
        && a.rows.len() == b.rows.len()
        && a.rows.iter().zip(&b.rows).all(|(ra, rb)| {
            ra.0.iter().zip(&rb.0).all(|(x, y)| match (x, y) {
                (Value::Float(p), Value::Float(q)) => {
                    (p - q).abs() <= 1e-9 * (1.0 + p.abs().max(q.abs()))
                }
                _ => x == y,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_matches_baseline_on_random_queries(table in arb_table(), sql in arb_query()) {
        let baseline = CsvBackend::new(&table, IoModel::default()).unwrap();
        let expected = baseline.execute(&sql).unwrap().result;

        for options in [
            BuildOptions::basic(),
            BuildOptions::optcols(PartitionSpec::new(&["k", "g"], 16)),
            BuildOptions::reordered(PartitionSpec::new(&["k", "g"], 16)),
        ] {
            let pd = PowerDrill::import(&table, &options).unwrap();
            let (got, stats) = pd.sql(&sql).unwrap();
            prop_assert!(
                approx_eq(&got, &expected),
                "options {:?}\nsql {sql}\ngot  {:?}\nwant {:?}",
                options, got.rows, expected.rows
            );
            prop_assert_eq!(
                stats.rows_skipped + stats.rows_cached + stats.rows_scanned,
                stats.rows_total
            );
            // Second execution (warm result cache) must be identical.
            let (again, _) = pd.sql(&sql).unwrap();
            prop_assert!(approx_eq(&again, &expected), "cache changed the result for {sql}");
        }
    }

    #[test]
    fn skipping_never_changes_results(table in arb_table(), g in 0usize..12) {
        // A restriction targeted at one g-value: heavily skippable under
        // partitioning by (g), and the result must match Basic (no chunks).
        let sql = format!(
            "SELECT k, COUNT(*) as c FROM data WHERE g = 'g{g:02}' GROUP BY k ORDER BY c DESC"
        );
        let plain = PowerDrill::import(&table, &BuildOptions::basic()).unwrap();
        let partitioned =
            PowerDrill::import(&table, &BuildOptions::reordered(PartitionSpec::new(&["g"], 8)))
                .unwrap();
        let (a, _) = plain.sql(&sql).unwrap();
        let (b, _) = partitioned.sql(&sql).unwrap();
        prop_assert!(approx_eq(&a, &b), "sql {sql}\nbasic {:?}\npartitioned {:?}", a.rows, b.rows);
    }
}
