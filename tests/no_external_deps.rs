//! The zero-external-dependency invariant, enforced mechanically.
//!
//! The whole reproduction builds from the standard library alone (std-only
//! shims replace `parking_lot`/`rand`/`proptest`/`criterion`/`bytes`; the
//! compression codecs are written from scratch). Every workspace-internal
//! package appears in `Cargo.lock` *without* a `source` key; any package
//! pulled from a registry or git would carry one. CI runs the same check
//! as a dedicated `no-external-deps` guard step, so the invariant fails a
//! build instead of relying on review.

#[test]
fn cargo_lock_lists_only_workspace_packages() {
    let lock_path = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.lock");
    let lock = std::fs::read_to_string(lock_path).expect("read Cargo.lock");
    let external: Vec<&str> =
        lock.lines().filter(|line| line.trim_start().starts_with("source = ")).collect();
    assert!(
        external.is_empty(),
        "Cargo.lock lists non-workspace packages (zero-dependency invariant):\n{}",
        external.join("\n")
    );
    // Sanity: the lock file actually lists the workspace members, so an
    // empty/renamed file cannot fake a pass.
    for package in ["pd-common", "pd-compress", "pd-dist", "powerdrill"] {
        assert!(
            lock.contains(&format!("name = \"{package}\"")),
            "Cargo.lock is missing workspace package {package}"
        );
    }
}
