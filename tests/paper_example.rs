//! The worked example of §2.4, end to end.
//!
//! The paper builds a `search_string` column laid out as in Figure 1
//! (three chunks, double dictionary encoding) and evaluates
//!
//! ```sql
//! SELECT search_string, COUNT(*) as c FROM data
//! WHERE search_string IN ("la redoute", "voyages sncf")
//! GROUP BY search_string ORDER BY c DESC LIMIT 10;
//! ```
//!
//! finding that one global-id occurs in no chunk and the other only in
//! chunk 2 — a single active chunk, one counts-array pass, one result row.

use powerdrill::{BuildOptions, DataType, PartitionSpec, PowerDrill, Row, Schema, Table, Value};

/// Figure 1's data, with a `region` key that pins rows into the paper's
/// three chunks (the paper assumes the §2.2 partitioning already happened).
fn figure1_table() -> Table {
    let schema = Schema::of(&[("region", DataType::Int), ("search_string", DataType::Str)]);
    let chunks: [&[&str]; 3] = [
        // chunk 0
        &["ebay", "cheap flights", "amazon", "ebay", "yellow pages"],
        // chunk 1
        &["ab in den Urlaub", "amazon", "ebay", "faschingskostüme", "immobilienscout"],
        // chunk 2 — "la redoute" appears once, "voyages sncf" three times.
        &["chaussures", "voyages sncf", "la redoute", "voyages sncf", "voyages sncf"],
    ];
    let mut table = Table::new(schema);
    for (region, values) in chunks.iter().enumerate() {
        for v in *values {
            table.push_row(Row(vec![Value::Int(region as i64), Value::from(*v)])).unwrap();
        }
    }
    table
}

#[test]
fn section_2_4_worked_example() {
    let table = figure1_table();
    let pd = PowerDrill::import(&table, &BuildOptions::optcols(PartitionSpec::new(&["region"], 5)))
        .unwrap();
    assert_eq!(pd.store().chunk_count(), 3, "the example has three chunks");

    let (result, stats) = pd
        .sql(
            r#"SELECT search_string, COUNT(*) as c FROM data
                WHERE search_string IN ("la redoute", "voyages sncf")
                GROUP BY search_string ORDER BY c DESC LIMIT 10;"#,
        )
        .unwrap();

    // Only chunk 2 is active; chunks 0 and 1 are skipped outright.
    assert_eq!(stats.chunks_total, 3);
    assert_eq!(stats.chunks_skipped, 2, "{}", stats.summary());
    assert_eq!(stats.chunks_scanned, 1);

    // Two result rows, ordered by count descending.
    assert_eq!(result.rows.len(), 2);
    assert_eq!(result.rows[0].0, vec![Value::from("voyages sncf"), Value::Int(3)]);
    assert_eq!(result.rows[1].0, vec![Value::from("la redoute"), Value::Int(1)]);
}

#[test]
fn dictionary_lookup_chain_of_figure1() {
    // dict(ch0.dict(ch0.elems[3])) — the double indirection, spelled out.
    let table = figure1_table();
    let pd = PowerDrill::import(&table, &BuildOptions::optcols(PartitionSpec::new(&["region"], 5)))
        .unwrap();
    let col = pd.store().column("search_string").unwrap();
    // Row 3 of chunk 0 is the second "ebay".
    assert_eq!(col.value_at(0, 3), Value::from("ebay"));
    let chunk0 = &col.chunks[0];
    let chunk_id = chunk0.elements.get(3);
    let global_id = chunk0.dict.global_id_of(chunk_id);
    assert_eq!(col.dict.value(global_id), Value::from("ebay"));
    // Chunk 0 holds 4 distinct values; the global dictionary 10.
    assert_eq!(chunk0.dict.len(), 4);
    assert_eq!(col.dict.len(), 10);
}

#[test]
fn absent_value_skips_all_chunks() {
    // "9 is not contained in any chunk": a value that exists in the
    // dictionary but not in any chunk cannot happen (chunk dictionaries
    // cover all occurrences), so the paper's case is a value absent from
    // the probed chunks; an entirely unknown value skips everything.
    let table = figure1_table();
    let pd = PowerDrill::import(&table, &BuildOptions::optcols(PartitionSpec::new(&["region"], 5)))
        .unwrap();
    let (result, stats) = pd
        .sql("SELECT search_string, COUNT(*) c FROM data WHERE search_string = 'karnevalskostüme' GROUP BY search_string")
        .unwrap();
    assert!(result.rows.is_empty());
    assert_eq!(stats.chunks_skipped, 3);
    assert_eq!(stats.rows_scanned, 0);
}
