//! Plain `cargo test` coverage for the pd-analysis pass: the workspace must
//! be clean under all five rule classes, and the wire fingerprint must stay
//! pinned to the committed golden at `FRAME_VERSION` 5. The CI `analysis`
//! job runs the same pass as a binary; this wrapper makes a local
//! `cargo test` catch the same regressions without extra steps.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_clean_under_pd_analysis() {
    let findings = pd_analysis::analyze_workspace(workspace_root()).expect("analysis pass runs");
    assert!(
        findings.is_empty(),
        "pd-analysis found {} violation(s):\n{}\n\n\
         Fix each site, or justify it inline with\n\
         `// pd-analysis: allow(<rule>) -- <reason>` on the offending line or the line above.",
        findings.len(),
        findings.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
}

/// The golden wire-fingerprint test (the wire-drift rule's `cargo test`
/// face): every request/response tag and codec layout is pinned to
/// `FRAME_VERSION` 5. If this fails you changed the wire format — that is
/// only legal together with a version bump.
#[test]
fn wire_fingerprint_is_pinned_to_frame_version_5() {
    let root = workspace_root();
    let live = pd_analysis::compute_fingerprint(root).expect("codec files lex");
    let golden = pd_analysis::load_baseline(root).expect("committed golden exists");

    assert_eq!(
        golden.frame_version,
        Some(5),
        "the committed golden records FRAME_VERSION {:?}, expected 5 — if you bumped the \
         version on purpose, update this test's pin alongside the golden",
        golden.frame_version
    );
    assert_eq!(
        live.frame_version,
        Some(5),
        "crates/common/src/wire.rs declares FRAME_VERSION {:?}, expected 5 — a version bump \
         must ship with a re-blessed golden (`cargo run -p pd-analysis -- --bless`) and an \
         updated pin here",
        live.frame_version
    );
    assert_eq!(
        live, golden,
        "the live wire fingerprint no longer matches the committed golden.\n\
         The bump rule: any change to a tag constant or an Encode/Decode impl in a codec file \
         changes what peers parse, so it must ship with (1) a FRAME_VERSION bump in \
         crates/common/src/wire.rs, (2) a re-blessed golden via \
         `cargo run -p pd-analysis -- --bless`, and (3) an updated version pin in this test. \
         A diff without all three is silent wire drift."
    );

    // Spot-pin the request/response tags a mixed-version cluster depends on
    // most — a readable failure long before anyone diffs layout hashes.
    let expect_tags = [
        ("REQ_PING", 0),
        ("REQ_LOAD", 1),
        ("REQ_ATTACH", 2),
        ("REQ_QUERY", 3),
        ("REQ_DELAY", 4),
        ("REQ_SHUTDOWN", 5),
        ("REQ_APPEND", 6),
        ("RESP_OK", 0),
        ("RESP_ANSWER", 1),
        ("RESP_ERR", 2),
        ("RESP_MALFORMED", 3),
        ("RESP_LOADED", 4),
        ("RESP_FAULT", 5),
    ];
    for (name, value) in expect_tags {
        let line = format!("tag crates/dist/src/rpc.rs {name} = {value}");
        assert!(
            live.lines.contains(&line),
            "expected wire tag `{name} = {value}` missing or renumbered (looked for `{line}`)"
        );
    }
}
